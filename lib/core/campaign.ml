type config = {
  months : int;
  seed : int64;
  executors : int;
  initial_faults : int;
  fault_rate_per_day : float;
  workload : Oar.Workload.profile option;
  enable_testing : bool;
  staged_families : (int * Testdef.family list) list;
  enable_regression : bool;
  policy : Scheduler.policy;
  operator : Operator.config;
  resilience : bool;
  infra_faults : (float * Testbed.Faults.kind) list;
  infra_fault_duration : float;
  health : Health.config option;
  health_faults : (float * Testbed.Faults.kind * Testbed.Faults.target) list;
  audit : bool;
  triage : Triage.config option;
  serve : Serve.config option;
}

let default_config =
  {
    months = 6;
    seed = 42L;
    executors = 10;
    initial_faults = 60;
    fault_rate_per_day = 0.18;
    workload = Some Oar.Workload.default_profile;
    enable_testing = true;
    staged_families =
      [ ( 0,
          [ Testdef.Refapi; Testdef.Oarproperties; Testdef.Dellbios;
            Testdef.Oarstate; Testdef.Cmdline; Testdef.Sidapi;
            Testdef.Environments; Testdef.Stdenv; Testdef.Paralleldeploy;
            Testdef.Multireboot; Testdef.Multideploy; Testdef.Console ] );
        (2, [ Testdef.Disk; Testdef.Kavlan ]);
        (4, [ Testdef.Kwapi; Testdef.Mpigraph ]) ];
    enable_regression = false;
    policy = Scheduler.smart_policy;
    operator = Operator.default_config;
    resilience = false;
    infra_faults = [];
    infra_fault_duration = 12.0 *. Simkit.Calendar.hour;
    health = None;
    health_faults = [];
    audit = false;
    triage = None;
    serve = None;
  }

type monthly = {
  month : int;
  builds : int;
  successful : int;
  success_ratio : float;
  bugs_filed_cum : int;
  bugs_fixed_cum : int;
  active_faults : int;
  enabled_configs : int;
}

type report = {
  cfg : config;
  monthly : monthly list;
  bugs_filed : int;
  bugs_fixed : int;
  bugs_by_category : (string * int * int) list;
  faults_injected : int;
  faults_detected : int;
  faults_repaired : int;
  detection_latency_days : (string * float * int) list;
  builds_total : int;
  workload_jobs : int;
  scheduler_stats : Scheduler.stats option;
  resilience : Resilience.summary option;
  health : Health.summary option;
  audit : Simkit.Audit.summary option;
  triage : Triage.summary option;
  serve : Serve.summary option;
  mean_active_faults : float;
  statuspage : string;
  statuspage_html : string;
}

(* Arrival mix: hardware/configuration drift dominates, matching the
   paper's bug list. *)
let kind_weights =
  [ (Testbed.Faults.Cpu_cstates, 1.4); (Testbed.Faults.Cpu_hyperthreading, 0.8);
    (Testbed.Faults.Cpu_turbo, 0.8); (Testbed.Faults.Cpu_governor, 0.7);
    (Testbed.Faults.Bios_drift, 0.7); (Testbed.Faults.Disk_firmware, 1.2);
    (Testbed.Faults.Disk_write_cache, 1.0); (Testbed.Faults.Ram_dimm_loss, 0.5);
    (Testbed.Faults.Cabling_swap, 0.5); (Testbed.Faults.Kwapi_misattribution, 0.4);
    (Testbed.Faults.Random_reboots, 0.6); (Testbed.Faults.Kernel_boot_race, 0.25);
    (Testbed.Faults.Ofed_flaky, 0.3); (Testbed.Faults.Console_broken, 0.8);
    (Testbed.Faults.Service_outage, 1.3); (Testbed.Faults.Refapi_desync, 0.8);
    (Testbed.Faults.Oar_property_desync, 0.6); (Testbed.Faults.Env_image_corrupt, 0.25) ]

let pick_kind rng =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 kind_weights in
  let target = Simkit.Prng.float rng *. total in
  let rec pick acc = function
    | [] -> Testbed.Faults.Cpu_cstates
    | [ (k, _) ] -> k
    | (k, w) :: rest -> if acc +. w >= target then k else pick (acc +. w) rest
  in
  pick 0.0 kind_weights

(* A campaign that has been fully wired onto its engine but not driven
   yet.  [run] is [prepare] + drive + [finalize]; the federation layer
   interleaves many prepared campaigns window by window instead of
   driving each to its horizon in one call. *)
type sim = {
  sim_cfg : config;
  env : Env.t;
  tracker : Bugtracker.t;
  page : Statuspage.t;
  triage : Triage.t option;
  serve : Serve.t option;
  infra : Resilience.Infra.t option;
  workload : Oar.Workload.t option;
  scheduler : Scheduler.t option;
  health : Health.t option;
  auditor : Simkit.Audit.t option;
  snapshots : (int, int * int * int * int) Hashtbl.t;
  faults : Testbed.Faults.t;
}

let sim_engine sim = Env.engine sim.env
let sim_env sim = sim.env
let sim_horizon sim = float_of_int sim.sim_cfg.months *. Simkit.Calendar.month

let prepare cfg =
  let env = Env.create ~seed:cfg.seed ~executors:cfg.executors () in
  let engine = Env.engine env in
  let rng = Simkit.Prng.split (Simkit.Engine.rng engine) in
  let tracker =
    match cfg.triage with
    | Some tc -> Bugtracker.create ~limits:tc.Triage.limits ()
    | None -> Bugtracker.create ()
  in
  let page = Statuspage.create env in

  (* Failure-signature triage pipeline: opt-in so default campaigns
     replay bit-for-bit (no extra Prng split unless a drill is armed,
     no extra listeners, no canonicalized signatures). *)
  let triage =
    Option.map
      (fun tc ->
        let alerts = Monitoring.Alerts.create env.Env.collector in
        Triage.create ~config:tc ~alerts env tracker)
      cfg.triage
  in

  (* Status-page serving layer: opt-in, and its synthetic read workload
     draws from a dedicated seeded PRNG (never the engine master), so a
     serving campaign replays the unserved one's decisions byte for
     byte. *)
  let serve =
    Option.map
      (fun sconfig ->
        let alerts = Monitoring.Alerts.create env.Env.collector in
        Serve.attach ~alerts ~config:sconfig env page)
      cfg.serve
  in

  (* Latent problems predating the campaign. *)
  let faults = Env.faults env in
  let inject_traced now kind =
    match Testbed.Faults.inject faults ~now kind with
    | Some fault ->
      Env.tracef env ~category:"fault" "#%d %s" fault.Testbed.Faults.id
        fault.Testbed.Faults.what
    | None -> ()
  in
  for _ = 1 to cfg.initial_faults do
    inject_traced 0.0 (pick_kind rng)
  done;
  Oar.Manager.refresh_properties env.Env.oar;

  (* Resilience layer: watchdogs + degraded-mode supervision of the CI
     server.  Off by default so historical campaigns replay bit-for-bit. *)
  let infra = if cfg.resilience then Some (Resilience.Infra.attach env) else None in

  (* Scheduled faults against the testing infrastructure itself
     (CI outage, hung builds, queue loss), each repaired after
     [infra_fault_duration]. *)
  List.iter
    (fun (time, kind) ->
      ignore
        (Simkit.Engine.schedule_at engine ~time (fun eng ->
             match Testbed.Faults.inject faults ~now:(Simkit.Engine.now eng) kind with
             | Some fault ->
               Env.tracef env ~category:"fault" "#%d %s" fault.Testbed.Faults.id
                 fault.Testbed.Faults.what;
               ignore
                 (Simkit.Engine.schedule eng ~delay:cfg.infra_fault_duration
                    (fun eng ->
                      Testbed.Faults.repair faults ~now:(Simkit.Engine.now eng) fault))
             | None -> ())))
    cfg.infra_faults;

  (* Scheduled correlated/targeted faults for health drills.  Unlike
     [infra_faults] these are NOT auto-repaired: fixing them (and
     re-admitting the affected nodes) is the self-healing loop's job. *)
  List.iter
    (fun (time, kind, target) ->
      ignore
        (Simkit.Engine.schedule_at engine ~time (fun eng ->
             match
               Testbed.Faults.inject_on faults ~now:(Simkit.Engine.now eng) kind
                 target
             with
             | Some fault ->
               Env.tracef env ~category:"fault" "#%d %s" fault.Testbed.Faults.id
                 fault.Testbed.Faults.what
             | None -> ())))
    cfg.health_faults;

  (* Continuous fault arrivals, sampled every 6 hours. *)
  let sweep = 6.0 *. Simkit.Calendar.hour in
  Simkit.Engine.every engine ~label:"faults" ~period:sweep (fun eng ->
      let mean = cfg.fault_rate_per_day *. (sweep /. Simkit.Calendar.day) in
      let n = Simkit.Dist.poisson rng ~mean in
      for _ = 1 to n do
        inject_traced (Simkit.Engine.now eng) (pick_kind rng)
      done;
      true);

  (* Daily OAR property refresh from the Reference API. *)
  Simkit.Engine.every engine ~label:"oar-refresh" ~period:Simkit.Calendar.day (fun _ ->
      Oar.Manager.refresh_properties env.Env.oar;
      true);

  (* User workload. *)
  let workload =
    Option.map (fun profile -> Oar.Workload.start ~profile ~rng:(Simkit.Prng.split rng) env.Env.oar) cfg.workload
  in

  (* Testing framework. *)
  let scheduler =
    if cfg.enable_testing then begin
      (match triage with
       | None ->
         Jobs.define_all env ~on_evidence:(fun evidence ->
             match Bugtracker.file tracker ~now:(Env.now env) evidence with
             | `New bug ->
               Env.tracef env ~category:"bug" "filed #%d [%s] %s" bug.Bugtracker.id
                 bug.Bugtracker.category bug.Bugtracker.summary
             | `Duplicate _ -> ())
       | Some tr ->
         (* Evidence flows through the triage pipeline instead: bundles,
            canonical signatures, drills. *)
         Jobs.define_all env
           ~on_outcome:(fun ~build outcome ->
             Triage.observe tr ~build ~result:outcome.Scripts.result
               outcome.Scripts.evidences)
           ~on_evidence:(fun _ -> ()));
      let scheduler = Scheduler.create ~policy:cfg.policy env in
      List.iter
        (fun (month, families) ->
          let time = float_of_int month *. Simkit.Calendar.month in
          if time <= 0.0 then List.iter (Scheduler.enable_family scheduler) families
          else
            ignore
              (Simkit.Engine.schedule_at engine ~time (fun _ ->
                   List.iter (Scheduler.enable_family scheduler) families)))
        cfg.staged_families;
      Scheduler.start scheduler;
      if cfg.enable_regression then
        Regression.define_jobs ~daily:true env
          ~on_evidence:
            (match triage with
            | Some tr -> Triage.ingest tr
            | None ->
              fun evidence ->
                ignore (Bugtracker.file tracker ~now:(Env.now env) evidence));
      Some scheduler
    end
    else None
  in
  (* Self-healing loop: opt-in so default campaigns replay bit-for-bit
     (the extra Prng split and sweep events only happen when enabled). *)
  let health =
    Option.map
      (fun hconfig ->
        let alerts = Monitoring.Alerts.create env.Env.collector in
        Health.attach ~config:hconfig ?scheduler ~alerts env)
      cfg.health
  in

  (* Runtime invariant auditor: opt-in, and it draws no engine
     randomness, so an audited campaign replays the unaudited one's
     decisions event for event. *)
  let auditor =
    if cfg.audit then begin
      let a = Auditor.attach ?scheduler env in
      Simkit.Audit.start a;
      Some a
    end
    else None
  in
  (* Evidence bundles cite the invariants failing around each build. *)
  (match (triage, auditor) with
   | Some tr, Some a -> Triage.set_auditor tr a
   | _ -> ());

  let operator =
    if cfg.enable_testing then Some (Operator.start ~config:cfg.operator env tracker)
    else
      (* Even without the framework, complaints and maintenance happen. *)
      Some
        (Operator.start
           ~config:{ cfg.operator with fix_capacity_per_day = 0.0 }
           env tracker)
  in
  ignore operator;

  (* Monthly snapshots of fault pressure and coverage. *)
  let snapshots = Hashtbl.create 16 in
  for m = 1 to cfg.months do
    let time = float_of_int m *. Simkit.Calendar.month in
    ignore
      (Simkit.Engine.schedule_at engine ~time (fun _ ->
           let active = List.length (Testbed.Faults.active faults) in
           let enabled =
             match scheduler with
             | Some s ->
               List.fold_left
                 (fun acc f -> acc + List.length (Testdef.expand f))
                 0 (Scheduler.enabled_families s)
             | None -> 0
           in
           let filed, fixed = Bugtracker.counts tracker in
           Hashtbl.replace snapshots (m - 1) (active, enabled, filed, fixed)))
  done;

  {
    sim_cfg = cfg;
    env;
    tracker;
    page;
    triage;
    serve;
    infra;
    workload;
    scheduler;
    health;
    auditor;
    snapshots;
    faults;
  }

let finalize sim =
  let {
    sim_cfg = cfg;
    env;
    tracker;
    page;
    triage;
    serve;
    infra;
    workload;
    scheduler;
    health;
    auditor;
    snapshots;
    faults;
  } =
    sim
  in
  (* Assemble the report. *)
  let month_stats = Statuspage.monthly_success page in
  let monthly =
    List.init cfg.months (fun m ->
        let builds, successful, ratio =
          match List.find_opt (fun (month, _, _, _) -> month = m) month_stats with
          | Some (_, builds, successful, ratio) -> (builds, successful, ratio)
          | None -> (0, 0, nan)
        in
        let active, enabled, filed, fixed =
          Option.value ~default:(0, 0, 0, 0) (Hashtbl.find_opt snapshots m)
        in
        {
          month = m;
          builds;
          successful;
          success_ratio = ratio;
          bugs_filed_cum = filed;
          bugs_fixed_cum = fixed;
          active_faults = active;
          enabled_configs = enabled;
        })
  in
  let history = Testbed.Faults.history faults in
  let detection_latency_days =
    let table = Hashtbl.create 8 in
    List.iter
      (fun fault ->
        match fault.Testbed.Faults.detected_at with
        | Some detected ->
          let category = Testbed.Faults.category fault.Testbed.Faults.kind in
          let latency =
            (detected -. fault.Testbed.Faults.injected_at) /. Simkit.Calendar.day
          in
          let total, n =
            Option.value ~default:(0.0, 0) (Hashtbl.find_opt table category)
          in
          Hashtbl.replace table category (total +. latency, n + 1)
        | None -> ())
      history;
    Hashtbl.fold
      (fun category (total, n) acc -> (category, total /. float_of_int n, n) :: acc)
      table []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  let filed, fixed = Bugtracker.counts tracker in
  let resilience_summary =
    Option.map
      (fun i ->
        let sched =
          Option.map
            (fun s ->
              let st = Scheduler.stats s in
              ( st.Scheduler.breaker_trips,
                st.Scheduler.skipped_breaker_open,
                st.Scheduler.retries_spent,
                st.Scheduler.retries_exhausted,
                cfg.policy.Scheduler.retry_budget ))
            scheduler
        in
        Resilience.Infra.summary i ~scheduler:sched)
      infra
  in
  let mean_active_faults =
    match monthly with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun acc m -> acc +. float_of_int m.active_faults) 0.0 monthly
      /. float_of_int (List.length monthly)
  in
  let health_summary = Option.map Health.summary health in
  let triage_summary = Option.map Triage.summary triage in
  let serve_summary = Option.map Serve.summary serve in
  {
    cfg;
    monthly;
    bugs_filed = filed;
    bugs_fixed = fixed;
    bugs_by_category = Bugtracker.by_category tracker;
    faults_injected = List.length history;
    faults_detected =
      List.length (List.filter (fun f -> f.Testbed.Faults.detected_at <> None) history);
    faults_repaired =
      List.length (List.filter (fun f -> f.Testbed.Faults.repaired_at <> None) history);
    detection_latency_days;
    builds_total = Ci.Server.builds_executed env.Env.ci;
    workload_jobs = (match workload with Some w -> Oar.Workload.submitted w | None -> 0);
    scheduler_stats = Option.map Scheduler.stats scheduler;
    resilience = resilience_summary;
    health = health_summary;
    audit = Option.map Simkit.Audit.summary auditor;
    triage = triage_summary;
    serve = serve_summary;
    mean_active_faults;
    statuspage =
      Statuspage.render_overview page ^ "\n== Cluster confidence ==\n"
      ^ Confidence.render page
      ^ (match resilience_summary with
        | Some s ->
          "\n== Resilience (testing infrastructure) ==\n"
          ^ Statuspage.render_resilience s
        | None -> "")
      ^ (match health_summary with
        | Some s ->
          "\n== Node health (self-healing loop) ==\n"
          ^ Statuspage.render_health page s
        | None -> "")
      ^ (match triage_summary with
        | Some s ->
          "\n== Triage (failure-signature pipeline) ==\n"
          ^ Statuspage.render_triage s
        | None -> "")
      ^ (match serve_summary with
        | Some s ->
          "\n== Serving (status-page service) ==\n" ^ Serve.render s
        | None -> "");
    statuspage_html = Webstatus.render page;
  }

let run ?(drive = Simkit.Engine.run_until) cfg =
  let sim = prepare cfg in
  drive (sim_engine sim) (sim_horizon sim);
  finalize sim

let pp_report ppf report =
  Format.fprintf ppf "campaign: %d months, %d builds, %d bugs filed (%d fixed)@."
    report.cfg.months report.builds_total report.bugs_filed report.bugs_fixed;
  Format.fprintf ppf "faults: %d injected, %d detected, %d repaired@."
    report.faults_injected report.faults_detected report.faults_repaired;
  (match report.resilience with
   | Some r ->
     Format.fprintf ppf
       "resilience: %d watchdog aborts, %d breaker trips, %d CI outages, %d \
        builds dropped@."
       r.Resilience.watchdog_aborts r.Resilience.breaker_trips
       r.Resilience.ci_outages r.Resilience.dropped_builds
   | None -> ());
  (match report.health with
   | Some h ->
     Format.fprintf ppf
       "health: %d quarantined, %d released, %d retired, mean %.1f h to release@."
       h.Health.quarantined h.Health.released h.Health.retired
       h.Health.mean_hours_to_release
   | None -> ());
  (match report.triage with
   | Some s ->
     Format.fprintf ppf
       "triage: %d bundles, %d bugs, dedup x%.1f, %d reopens, %d flapping@."
       s.Triage.bundles s.Triage.filed s.Triage.dedup_ratio s.Triage.reopens
       s.Triage.flapping
   | None -> ());
  (match report.serve with
   | Some s ->
     Format.fprintf ppf
       "serving: %d reads (%d shed), %d renders, %d crashes, p99 staleness \
        %.1f s@."
       s.Serve.reads s.Serve.shed s.Serve.renders s.Serve.crashes
       s.Serve.staleness_p99
   | None -> ());
  List.iter
    (fun m ->
      Format.fprintf ppf
        "  month %d: %4d builds, success %s, bugs %d/%d, active faults %d@."
        m.month m.builds
        (Statuspage.fmt_ratio m.success_ratio)
        m.bugs_filed_cum m.bugs_fixed_cum m.active_faults)
    report.monthly
