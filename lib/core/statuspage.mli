(** The external status page.

    Jenkins shows one job at a time; operators need "per test status for
    all sites/clusters, per site or per cluster status for all tests, and
    a historical perspective".  This module aggregates build completions
    (observed through the CI server's API, like the real page used
    Jenkins' REST API) into exactly those three views, rendered as ASCII
    matrices. *)

type cell = Ok_ | Ko | Unst | Missing

type t

val create : Env.t -> t
(** Subscribes to build completions.  Records are timestamped with each
    build's [finished_at], so re-applying the same completion stream
    (see {!apply}) reproduces the aggregates exactly. *)

val apply : t -> Ci.Build.t -> unit
(** Feed one completed build directly, exactly as the subscription
    would.  The serving layer's crash recovery replays a journal of
    completions through this after {!reset}; applying a build twice
    double-counts it. *)

val reset : t -> unit
(** Wipe every aggregate (cells, site cells, months, per-family
    counters) — the serving layer's [Serve_crash] drill.  Generation
    counters are {e not} rewound: they are monotonic for the lifetime of
    the value, so snapshot caches keyed on a generation can never
    confuse a rebuilt page with the one they stamped. *)

val generation : t -> int
(** Bumped once per recorded completion; a cached rendering of any view
    is current iff its stamped generation still matches. *)

val site_generation : t -> site:string -> int
(** Per-site generation: bumps only when a completion touches the site
    (its {!Testdef.effective_site}), so per-site views invalidate in
    O(delta). *)

val cell_to_string : cell -> string

val fmt_ratio : float -> string
(** {!Simkit.Table.fmt_pct}, except that a [nan] ratio (empty store)
    renders as the ["--"] placeholder used for {!Missing} cells. *)

val latest : t -> family:Testdef.family -> scope:string -> cell
(** Latest result of a family on a scope key (site, cluster or vlan id,
    depending on the family's axes). *)

val site_status : t -> family:Testdef.family -> site:string -> cell
(** Aggregated over the family's configurations belonging to the site
    (worst of the latest results; Missing if none ran). *)

val per_test_matrix : t -> string
(** Rows = test families, columns = sites. *)

val per_cluster_matrix : t -> site:string -> string
(** Rows = families applicable per cluster, columns = the site's
    clusters. *)

val summary_rows : t -> (string * int * int * int * float) list
(** Per family: name, ok, ko, unstable, success ratio over all recorded
    completions. *)

val monthly_success : t -> (int * int * int * float) list
(** (month index, completed builds, successful builds, ratio) — the
    "85% ⇒ 93%" series. *)

val overall_success_ratio : t -> float

val render_overview : t -> string
(** The whole page: per-test matrix, per-family summary, job weather
    (Jenkins-style stability icons) and history. *)

val render_resilience : Resilience.summary -> string
(** ASCII table of the resilience counters (watchdog aborts, breaker
    trips, outage/queue-loss events weathered), appended to the page by
    campaigns that run with the resilience layer attached. *)

val render_triage : Triage.summary -> string
(** Triage pipeline section (delegates to {!Triage.render}): pipeline
    counters, dedup ratio, store stats and per-category MTTR. *)

val render_health : t -> Health.summary -> string
(** Self-healing loop section: the loop counters, cumulative quarantine
    entries per site, and the success-ratio-over-time series (the
    paper's 85% => 93% trajectory with the loop keeping broken nodes
    out of the pool).  Appended to the page by campaigns that run with
    a health supervisor attached. *)
