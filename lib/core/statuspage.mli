(** The external status page.

    Jenkins shows one job at a time; operators need "per test status for
    all sites/clusters, per site or per cluster status for all tests, and
    a historical perspective".  This module aggregates build completions
    (observed through the CI server's API, like the real page used
    Jenkins' REST API) into exactly those three views, rendered as ASCII
    matrices. *)

type cell = Ok_ | Ko | Unst | Missing

type t

val create : Env.t -> t
(** Subscribes to build completions. *)

val cell_to_string : cell -> string

val latest : t -> family:Testdef.family -> scope:string -> cell
(** Latest result of a family on a scope key (site, cluster or vlan id,
    depending on the family's axes). *)

val site_status : t -> family:Testdef.family -> site:string -> cell
(** Aggregated over the family's configurations belonging to the site
    (worst of the latest results; Missing if none ran). *)

val per_test_matrix : t -> string
(** Rows = test families, columns = sites. *)

val per_cluster_matrix : t -> site:string -> string
(** Rows = families applicable per cluster, columns = the site's
    clusters. *)

val summary_rows : t -> (string * int * int * int * float) list
(** Per family: name, ok, ko, unstable, success ratio over all recorded
    completions. *)

val monthly_success : t -> (int * int * int * float) list
(** (month index, completed builds, successful builds, ratio) — the
    "85% ⇒ 93%" series. *)

val overall_success_ratio : t -> float

val render_overview : t -> string
(** The whole page: per-test matrix, per-family summary, job weather
    (Jenkins-style stability icons) and history. *)

val render_resilience : Resilience.summary -> string
(** ASCII table of the resilience counters (watchdog aborts, breaker
    trips, outage/queue-loss events weathered), appended to the page by
    campaigns that run with the resilience layer attached. *)

val render_triage : Triage.summary -> string
(** Triage pipeline section (delegates to {!Triage.render}): pipeline
    counters, dedup ratio, store stats and per-category MTTR. *)

val render_health : t -> Health.summary -> string
(** Self-healing loop section: the loop counters, cumulative quarantine
    entries per site, and the success-ratio-over-time series (the
    paper's 85% => 93% trajectory with the loop keeping broken nodes
    out of the pool).  Appended to the page by campaigns that run with
    a health supervisor attached. *)
