let monthly_to_json (m : Campaign.monthly) =
  let open Simkit.Json in
  Obj
    [ ("month", Int m.Campaign.month);
      ("builds", Int m.Campaign.builds);
      ("successful", Int m.Campaign.successful);
      ( "success_ratio",
        if Float.is_nan m.Campaign.success_ratio then Null
        else Float m.Campaign.success_ratio );
      ("bugs_filed_cum", Int m.Campaign.bugs_filed_cum);
      ("bugs_fixed_cum", Int m.Campaign.bugs_fixed_cum);
      ("active_faults", Int m.Campaign.active_faults);
      ("enabled_configs", Int m.Campaign.enabled_configs) ]

let scheduler_to_json ?(health = false) (s : Scheduler.stats) =
  let open Simkit.Json in
  Obj
    ([ ("polls", Int s.Scheduler.polls);
       ("triggered", Int s.Scheduler.triggered);
       ("completed_success", Int s.Scheduler.completed_success);
       ("completed_failure", Int s.Scheduler.completed_failure);
       ("completed_unstable", Int s.Scheduler.completed_unstable);
       ("skipped_peak", Int s.Scheduler.skipped_peak);
       ("skipped_site_busy", Int s.Scheduler.skipped_site_busy);
       ("skipped_no_resources", Int s.Scheduler.skipped_no_resources) ]
    (* The quarantine split only exists with a health supervisor, so
       reports from historical configurations stay byte-identical. *)
    @ if health then [ ("skipped_quarantined", Int s.Scheduler.skipped_quarantined) ]
      else [])

let to_json (report : Campaign.report) =
  let open Simkit.Json in
  (* The resilience member only exists when the campaign ran with the
     resilience layer attached, so reports from historical configurations
     stay byte-identical. *)
  let resilience =
    match report.Campaign.resilience with
    | Some s -> [ ("resilience", Resilience.summary_to_json s) ]
    | None -> []
  in
  let health =
    match report.Campaign.health with
    | Some s -> [ ("health", Health.summary_to_json s) ]
    | None -> []
  in
  let triage =
    match report.Campaign.triage with
    | Some s -> [ ("triage", Triage.summary_to_json s) ]
    | None -> []
  in
  let audit =
    match report.Campaign.audit with
    | Some s -> [ ("audit", Simkit.Audit.summary_to_json s) ]
    | None -> []
  in
  let serve =
    match report.Campaign.serve with
    | Some s -> [ ("serve", Serve.summary_to_json s) ]
    | None -> []
  in
  Obj
    ([ ("schema", String "g5ktest/campaign-report/1");
      ("months", Int report.Campaign.cfg.Campaign.months);
      ("seed", String (Int64.to_string report.Campaign.cfg.Campaign.seed));
      ("builds_total", Int report.Campaign.builds_total);
      ("workload_jobs", Int report.Campaign.workload_jobs);
      ("bugs_filed", Int report.Campaign.bugs_filed);
      ("bugs_fixed", Int report.Campaign.bugs_fixed);
      ( "bugs_by_category",
        List
          (List.map
             (fun (category, filed, fixed) ->
               Obj
                 [ ("category", String category); ("filed", Int filed);
                   ("fixed", Int fixed) ])
             report.Campaign.bugs_by_category) );
      ("faults_injected", Int report.Campaign.faults_injected);
      ("faults_detected", Int report.Campaign.faults_detected);
      ("faults_repaired", Int report.Campaign.faults_repaired);
      ( "detection_latency_days",
        List
          (List.map
             (fun (category, days, n) ->
               Obj
                 [ ("category", String category); ("mean_days", Float days);
                   ("detections", Int n) ])
             report.Campaign.detection_latency_days) );
      ("monthly", List (List.map monthly_to_json report.Campaign.monthly));
      ( "scheduler",
        match report.Campaign.scheduler_stats with
        | Some s ->
          scheduler_to_json ~health:(report.Campaign.health <> None) s
        | None -> Null ) ]
    @ resilience @ health @ audit @ triage @ serve)

let to_string ?(indent = 2) report = Simkit.Json.to_string ~indent (to_json report)

let summary_of_json json =
  let open Simkit.Json in
  match string_member "schema" json with
  | Some "g5ktest/campaign-report/1" -> (
    match
      ( int_member "months" json,
        int_member "builds_total" json,
        int_member "bugs_filed" json,
        int_member "bugs_fixed" json,
        list_member "monthly" json )
    with
    | Some months, Some builds, Some filed, Some fixed, Some monthly ->
      if List.length monthly <> months then Error "monthly series length mismatch"
      else
        Ok
          (Printf.sprintf "%d months, %d builds, %d bugs (%d fixed)" months builds
             filed fixed)
    | _ -> Error "missing required members")
  | Some other -> Error ("unknown schema: " ^ other)
  | None -> Error "missing schema member"
