(** Fault tolerance for the testing infrastructure itself.

    The paper's central lesson is that a testing framework for an
    unreliable testbed must itself survive failure: builds hang, Jenkins
    misbehaves, and the custom scheduler exists precisely to retry
    Unstable builds with backoff.  This module provides the reusable
    pieces the framework uses to stay trustworthy when its own
    infrastructure degrades:

    - {!Retry}: exponential backoff with optional decorrelated jitter
      and a per-caller retry budget;
    - {!Breaker}: a per-test-family circuit breaker (Closed -> Open ->
      Half_open) that stops triggering a family after consecutive
      failures and probes it again after a cool-down;
    - {!Watchdog}: build timeouts driven by {!Simkit.Engine} events —
      armed when a build starts, cancelled on normal completion, and
      aborting the build when the deadline passes;
    - {!Infra}: the supervisor wiring watchdogs and the infrastructure
      fault flags ({!Testbed.Faults.Ci_outage}, [Build_hang],
      [Queue_loss]) into a running environment.

    All randomness is drawn from dedicated deterministic streams so that
    campaigns remain reproducible for a given seed. *)

module Retry : sig
  type config = {
    initial : float;  (** first retry delay, seconds *)
    max_delay : float;  (** backoff cap, seconds *)
    multiplier : float;  (** deterministic growth factor (jitter = 0) *)
    jitter : float;
        (** 0 selects the legacy deterministic exponential backoff
            (delay, then delay x multiplier, capped).  Any value in
            (0, 1] selects decorrelated jitter: each delay is drawn
            uniformly from [initial, 3 x previous] scaled by [jitter],
            capped at [max_delay]. *)
    budget : int;
        (** retries allowed per streak; [max_int] = unlimited.  The
            budget refills on {!reset} (i.e. when the guarded operation
            finally succeeds or is abandoned). *)
  }

  val default : config
  (** 1 h initial, 4-day cap, x2, no jitter, unlimited budget — the
      scheduler's historical behaviour. *)

  type t

  val create : ?seed:int64 -> config -> t
  (** The seed only matters when [jitter > 0]; it defaults to a fixed
      constant so two retries created alike behave alike. *)

  val next_delay : t -> float option
  (** Consume one retry from the budget and return the delay to wait.
      [None] once the budget is exhausted (the caller should give up and
      fall back to its base schedule). *)

  val reset : t -> unit
  (** Start a fresh streak: backoff returns to [initial], the per-streak
      budget refills.  The lifetime total ({!total_spent}) is kept. *)

  val spent : t -> int
  (** Retries consumed in the current streak. *)

  val total_spent : t -> int
  (** Retries consumed over the retry's lifetime (reporting). *)

  val budget : t -> int
  val exhausted : t -> bool
end

module Breaker : sig
  type config = {
    failure_threshold : int;  (** consecutive failures before opening *)
    cooldown : float;  (** seconds Open before allowing a probe *)
  }

  val default : config
  (** 5 consecutive failures, 12-hour cool-down. *)

  type state = Closed | Open | Half_open

  type t

  val create : config -> t
  val state : t -> state

  val allow : t -> now:float -> bool
  (** Whether the caller may attempt the guarded operation now.  In
      [Open] state, the cool-down expiry transitions to [Half_open] and
      admits exactly one probe; further calls return [false] until the
      probe's outcome is recorded. *)

  val record_success : t -> unit
  (** Closes the breaker and clears the failure streak. *)

  val record_failure : t -> now:float -> unit
  (** In [Closed], lengthen the streak (opening at the threshold); in
      [Half_open], re-open immediately.  Each transition to [Open]
      counts as one trip. *)

  val trips : t -> int
  (** Times the breaker transitioned to [Open]. *)
end

module Watchdog : sig
  type t
  type handle

  val create : Simkit.Engine.t -> t

  val arm : t -> delay:float -> (unit -> unit) -> handle
  (** Schedule the callback to fire in [delay] seconds unless disarmed
      first. *)

  val disarm : t -> handle -> unit
  (** Clean cancel; no-op if the watchdog already fired or was
      disarmed. *)

  val fired : t -> int
  (** Watchdogs that expired (= builds aborted when used by {!Infra}). *)

  val armed : t -> int
  (** Watchdogs currently pending. *)
end

(** Aggregated resilience numbers surfaced by the status page and the
    campaign report. *)
type summary = {
  watchdog_aborts : int;  (** builds killed past their deadline *)
  breaker_trips : int;  (** circuit-breaker transitions to Open *)
  skipped_breaker_open : int;  (** trigger attempts vetoed by a breaker *)
  retries_spent : int;  (** backoff retries consumed by the scheduler *)
  retry_budget : int;  (** per-configuration budget ([max_int] = unlimited) *)
  retries_exhausted : int;  (** streaks that ran out of budget *)
  ci_outages : int;  (** CI outage spells weathered *)
  queue_drops : int;  (** queue-loss events absorbed *)
  dropped_builds : int;  (** queued builds lost to queue wipes *)
  deferred_triggers : int;  (** triggers queued during an outage, replayed after *)
}

val empty_summary : summary

module Infra : sig
  (** Supervisor making a running environment survive infrastructure
      faults.  It arms a watchdog for every build that starts (aborting
      it at the family deadline), and polls the testbed fault flags to
      drive the CI server's degraded modes: an active
      {!Testbed.Faults.Ci_outage} pauses the executors (triggers keep
      queueing and replay on recovery), [Build_hang] makes started
      builds hang until their watchdog kills them, and [Queue_loss]
      wipes the pending queue once per injection (listeners are
      notified, so the scheduler reschedules the lost work). *)

  type config = {
    check_period : float;  (** fault-flag polling period, seconds *)
    deadline_of : Ci.Build.t -> float option;
        (** watchdog deadline for a build; [None] = don't arm *)
  }

  val default_config : config
  (** 5-minute flag polling; deadline = max(2 h, 8 x the family's
      nominal duration), 4 h for builds outside the catalog. *)

  val default_deadline : Ci.Build.t -> float option
  (** The deadline function used by {!default_config}. *)

  type t

  val attach : ?config:config -> Env.t -> t
  (** Subscribe to build start/completion and begin the fault-flag
      polling loop on the environment's engine. *)

  val detach : t -> unit
  (** Stop the polling loop; already-armed watchdogs stay armed. *)

  val watchdog_aborts : t -> int
  val ci_outages : t -> int
  val queue_drops : t -> int
  val dropped_builds : t -> int

  val summary :
    t -> scheduler:(int * int * int * int * int) option -> summary
  (** Assemble a {!summary}.  [scheduler] carries
      [(breaker_trips, skipped_breaker_open, retries_spent,
        retries_exhausted, retry_budget)] when a scheduler ran. *)
end

val summary_to_json : summary -> Simkit.Json.t
