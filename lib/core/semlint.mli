(** Semantic analysis passes behind Trustlint: proofs, not heuristics.

    Three provers over the static model, surfaced through {!Lint} as
    diagnostics L004/L005 and L016-L020:

    {b Pass 1 — abstract interpretation of OAR filters.}  The domain has
    one element per inventory cluster; within a cluster every property
    except [host] is constant across its [nodes] hosts, so a comparison
    on a constant property selects exactly 0 or [nodes] of them, and
    [host] itself is handled exactly for (in)equality against canonical
    host names (Top for lexicographic orderings).  Compound filters get
    interval arithmetic: for selections [a] and [b] over an [n]-host
    cluster, [a and b] selects between [max 0 (lo_a + lo_b - n)] and
    [min hi_a hi_b] hosts, [a or b] between [max lo_a lo_b] and
    [min n (hi_a + hi_b)], [not a] between [n - hi_a] and [n - lo_a].
    Soundness: the concrete host count always lies inside the computed
    interval (qcheck oracle in [test/test_lint.ml] enumerates randomized
    inventories against {!Oar.Expr.eval}), so [hi = 0] proves
    unsatisfiability (L004/L016) and [lo = population] proves vacuity
    (L005/L016).  Filters are first rewritten by {!Oar.Expr.normalize};
    a {!Oar.Expr.False}/[True] result is reported as L016 (inventory-
    independent contradiction/tautology).  L017 flags orderings on
    numeric-valued properties that OAR would compare non-numerically.

    {b Pass 2 — static capacity / schedulability.}  Each configuration
    demands [nominal_duration / base_period] executor-utilization; node-
    consuming work only runs off-peak under [avoid_peak_hours] (113 of
    168 weekly hours) and at most one build per site under
    [one_job_per_site].  Demand provably exceeding an envelope — global
    executors, a site's single-build budget, or a cluster's exclusive-
    test budget — is L018.  L019 runs Tarjan SCC over the constraint
    graph of simultaneous multi-pool acquisitions (Site_spread
    configurations): components that admit a circular wait are reported
    as deadlock cycles.

    {b Pass 3 — PRNG stream registry.}  L020 proves the
    {!Simkit.Streams} derivation-tag ranges disjoint for the configured
    federation size; overlapping ranges alias streams and break the
    determinism contract the differential harness relies on. *)

type severity = Error | Warning

type finding = {
  code : string;  (** ["L004"], ["L005"], ["L016"].."[L020]" *)
  severity : severity;
  path : string;
  message : string;
  fix : string option;  (** machine-applicable repair suggestion *)
}

(** {2 Pass 1: filters} *)

type bounds = { lo : int; hi : int }
(** Inclusive interval on a feasible-host count. *)

type domain

val domain_of_clusters : Testbed.Inventory.cluster_spec list -> domain

val inventory : unit -> domain
(** The full 2017 inventory (32 clusters, 894 hosts), built once. *)

val constant_props : Testbed.Inventory.cluster_spec -> (string * string) list
(** The per-cluster OAR property row, [host] excluded (it varies). *)

val host_props : Testbed.Inventory.cluster_spec -> int -> (string * string) list
(** Concrete property row of host [i] (1-based) — the enumeration the
    soundness oracle evaluates filters against. *)

val cluster_bounds :
  domain -> Oar.Expr.t -> (Testbed.Inventory.cluster_spec * bounds) list
(** Per-cluster proved bounds on the number of hosts the filter
    selects. *)

val feasible_bounds : domain -> Oar.Expr.t -> bounds
(** Sum of {!cluster_bounds} over the domain. *)

val check_expr :
  ?domain:domain -> path:string -> filter:string -> Oar.Expr.t -> finding list
(** L016 (normalize-level contradiction/tautology), L004 (proved
    unsatisfiable), L005 (proved vacuous) and L017 (non-numeric ordering
    hazards) on one parsed filter.  [filter] is the source text used in
    messages.  Root-cause ordered: an L016/L004 verdict suppresses the
    downstream findings it explains. *)

(** {2 Pass 2: capacity / schedulability} *)

val offpeak_fraction : float
(** Fraction of the week outside peak hours (weekday 8-19h): 113/168. *)

val utilization : Testdef.config list -> float
(** Sum of [nominal_duration / base_period] over the configurations. *)

val check_capacity :
  path:string ->
  policy:Scheduler.policy ->
  executors:int ->
  Testdef.config list ->
  finding list
(** L018.  Non-positive [executors] and empty catalogs are skipped (the
    former is already L011's root cause). *)

val check_deadlock :
  path:string -> serialized:bool -> Testdef.config list -> finding list
(** L019.  [serialized] is the policy's [one_job_per_site]: serialized
    same-site acquisition cannot deadlock, so the check is a no-op. *)

(** {2 Pass 3: PRNG streams} *)

val check_streams : path:string -> members:int -> finding list
(** L020 over [Simkit.Streams.registry ~members]. *)
