(* Failure-signature triage pipeline: evidence bundles assembled on build
   completion, canonical signatures that cluster equivalent failures, and
   a robustness loop (MTTR, regression/flap detection, escalation) on top
   of the bounded-memory bug store. *)

type scope =
  | Host of string
  | Cluster of string
  | Site of string
  | Image of string
  | Global

let scope_to_string = function
  | Host h -> "host/" ^ h
  | Cluster c -> "cluster/" ^ c
  | Site s -> "site/" ^ s
  | Image i -> "image/" ^ i
  | Global -> "global"

type canonical = { category : string; fingerprint : string; scope : scope }

(* Legacy signatures are ':'-separated with hosts, sites, images and vlan
   ids mixed into the dedup key, so the same failure on two hosts of one
   cluster files two bugs.  Canonicalization strips the location tokens
   into a scope (host -> its cluster, site, image) and keeps the rest as
   the fingerprint: category x fingerprint x scope is the cluster key. *)
let canonicalize env (evidence : Bugtracker.evidence) =
  let classify token =
    if String.contains token '.' then
      match Testbed.Instance.find_node env.Env.instance token with
      | Some node -> `Scope (Cluster node.Testbed.Node.cluster_name)
      | None -> `Scope (Host token)
    else if List.mem token Testbed.Inventory.sites then `Scope (Site token)
    else if Testbed.Inventory.find_cluster token <> None then
      `Scope (Cluster token)
    else if Kadeploy.Image.find token <> None then `Scope (Image token)
    else `Keep token
  in
  let tokens = String.split_on_char ':' evidence.Bugtracker.signature in
  let scope, kept =
    List.fold_left
      (fun (scope, kept) token ->
        match classify token with
        | `Scope s -> ((if scope = Global then s else scope), kept)
        | `Keep token -> (scope, token :: kept))
      (Global, []) tokens
  in
  {
    category = evidence.Bugtracker.category;
    fingerprint = String.concat ":" (List.rev kept);
    scope;
  }

let canonical_signature c =
  c.category ^ "|" ^ c.fingerprint ^ "|" ^ scope_to_string c.scope

type bundle = {
  at : float;
  job : string;  (** "" for build-less filings (regression experiments) *)
  build_number : int;
  result : Ci.Build.result;
  retry_lineage : int list;  (** watchdog/retry chain, oldest first *)
  hosts : string list;
  node_health : (string * string) list;  (** blamed host -> health state *)
  invariants : string list;  (** audit checks failing during the build *)
  active_faults : (int * string) list;  (** ground-truth faults on the hosts *)
  canonical : canonical;
  evidence : Bugtracker.evidence;
}

type drill = { evidence_loss : float; filing_delay : float }

type config = {
  limits : Bugtracker.limits;
  dedup_window : float;
  flap_cycles : int;
  flap_window : float;
  escalate_flappers : bool;
  file_unstable : bool;
  keep_bundles : int;
  drill : drill option;
}

let default_config =
  {
    limits = Bugtracker.default_limits;
    dedup_window = 3600.0;
    flap_cycles = 3;
    flap_window = 30.0 *. Simkit.Calendar.day;
    escalate_flappers = true;
    file_unstable = false;
    keep_bundles = 32;
    drill = None;
  }

type summary = {
  builds_observed : int;
  bundles : int;
  filed : int;
  duplicates : int;
  collapsed : int;
  lost : int;
  delayed : int;
  unstable_observed : int;
  dedup_ratio : float;
  reopens : int;
  flapping : int;
  escalations : int;
  mttr_days_by_category : (string * float * int) list;
  store : Bugtracker.stats;
}

type t = {
  env : Env.t;
  cfg : config;
  tracker : Bugtracker.t;
  alerts : Monitoring.Alerts.t option;
  mutable auditor : Simkit.Audit.t option;
  rng : Simkit.Prng.t option;  (* only drawn for drills *)
  last_filed : (string, string * float) Hashtbl.t;  (* canonical -> job, at *)
  open_since : (int, float) Hashtbl.t;  (* bug id -> entered Open *)
  reopen_times : (int, float list) Hashtbl.t;  (* newest first, pruned *)
  flappers : (int, unit) Hashtbl.t;
  mutable recent : bundle list;  (* newest first, bounded *)
  mutable builds_observed : int;
  mutable bundles : int;
  mutable filed : int;
  mutable duplicates : int;
  mutable collapsed : int;
  mutable lost : int;
  mutable delayed : int;
  mutable unstable_observed : int;
  mutable reopens : int;
  mutable escalations : int;
  mttr : (string, float * int) Hashtbl.t;  (* category -> total s, n *)
}

(* ---- robustness loop on store events ------------------------------------ *)

let check_flapping t (bug : Bugtracker.bug) ~now =
  let times =
    now :: Option.value ~default:[] (Hashtbl.find_opt t.reopen_times bug.Bugtracker.id)
    |> List.filter (fun at -> now -. at <= t.cfg.flap_window)
  in
  Hashtbl.replace t.reopen_times bug.Bugtracker.id times;
  if
    List.length times >= t.cfg.flap_cycles
    && not (Hashtbl.mem t.flappers bug.Bugtracker.id)
  then begin
    Hashtbl.replace t.flappers bug.Bugtracker.id ();
    Env.tracef t.env ~category:"triage" "bug #%d is flapping (%d reopens)"
      bug.Bugtracker.id bug.Bugtracker.reopens;
    if t.cfg.escalate_flappers then begin
      t.escalations <- t.escalations + 1;
      match t.alerts with
      | Some alerts ->
        ignore
          (Monitoring.Alerts.notify_flapping alerts ~now ~bug:bug.Bugtracker.id
             ~reason:
               (Printf.sprintf "bug #%d [%s] fixed<->reopened %d times in %.0f days"
                  bug.Bugtracker.id bug.Bugtracker.category
                  (List.length times)
                  (t.cfg.flap_window /. Simkit.Calendar.day)))
      | None -> ()
    end
  end

let on_store_event t event =
  let now = Env.now t.env in
  match event with
  | Bugtracker.Filed bug | Bugtracker.Resurrected bug ->
    Hashtbl.replace t.open_since bug.Bugtracker.id now
  | Bugtracker.Reopened bug ->
    t.reopens <- t.reopens + 1;
    Hashtbl.replace t.open_since bug.Bugtracker.id now;
    check_flapping t bug ~now
  | Bugtracker.Marked_fixed bug ->
    (match Hashtbl.find_opt t.open_since bug.Bugtracker.id with
     | Some since ->
       Hashtbl.remove t.open_since bug.Bugtracker.id;
       let total, n =
         Option.value ~default:(0.0, 0)
           (Hashtbl.find_opt t.mttr bug.Bugtracker.category)
       in
       Hashtbl.replace t.mttr bug.Bugtracker.category (total +. (now -. since), n + 1)
     | None -> ());
    (match t.alerts with
     | Some alerts when Hashtbl.mem t.flappers bug.Bugtracker.id ->
       Monitoring.Alerts.resolve_flapping alerts ~now ~bug:bug.Bugtracker.id
     | _ -> ())
  | Bugtracker.Refiled _ -> ()
  | Bugtracker.Evicted bug -> Hashtbl.remove t.open_since bug.Bugtracker.id

let create ?(config = default_config) ?alerts ?auditor env tracker =
  let t =
    {
      env;
      cfg = config;
      tracker;
      alerts;
      auditor;
      rng =
        (match config.drill with
         | Some _ -> Some (Simkit.Prng.split (Simkit.Engine.rng (Env.engine env)))
         | None -> None);
      last_filed = Hashtbl.create 1024;
      open_since = Hashtbl.create 1024;
      reopen_times = Hashtbl.create 64;
      flappers = Hashtbl.create 16;
      recent = [];
      builds_observed = 0;
      bundles = 0;
      filed = 0;
      duplicates = 0;
      collapsed = 0;
      lost = 0;
      delayed = 0;
      unstable_observed = 0;
      reopens = 0;
      escalations = 0;
      mttr = Hashtbl.create 8;
    }
  in
  Bugtracker.on_event tracker (on_store_event t);
  t

let set_auditor t auditor = t.auditor <- Some auditor

(* ---- evidence-bundle assembly ------------------------------------------- *)

let retry_lineage t (build : Ci.Build.t) =
  let rec chain number acc =
    if List.length acc >= 16 then acc  (* defensive bound *)
    else
      match Ci.Server.build t.env.Env.ci build.Ci.Build.job_name number with
      | Some b -> (
        match b.Ci.Build.retry_of with
        | Some prev -> chain prev (prev :: acc)
        | None -> acc)
      | None -> acc
  in
  match build.Ci.Build.retry_of with
  | Some prev -> chain prev [ prev ]
  | None -> []

let node_health_of t hosts =
  List.filter_map
    (fun host ->
      match Testbed.Instance.find_node t.env.Env.instance host with
      | Some node ->
        Some (host, Testbed.Node.health_to_string node.Testbed.Node.health)
      | None -> None)
    hosts

let failing_invariants t ~since =
  match t.auditor with
  | None -> []
  | Some auditor ->
    Simkit.Audit.violations auditor
    |> List.filter (fun v -> v.Simkit.Audit.at >= since)
    |> List.map (fun v -> v.Simkit.Audit.check)
    |> List.sort_uniq String.compare

let fault_context t hosts =
  let faults = Env.faults t.env in
  List.concat_map (fun host -> Testbed.Faults.active_on_host faults host) hosts
  |> List.sort_uniq (fun a b -> compare a.Testbed.Faults.id b.Testbed.Faults.id)
  |> List.map (fun f ->
         (f.Testbed.Faults.id, Testbed.Faults.kind_to_string f.Testbed.Faults.kind))

let assemble t ?build ~result evidence =
  let canonical = canonicalize t.env evidence in
  let hosts =
    match build with Some b -> b.Ci.Build.touched_hosts | None -> []
  in
  let since =
    match build with
    | Some b -> Option.value ~default:0.0 b.Ci.Build.started_at
    | None -> Env.now t.env
  in
  {
    at = Env.now t.env;
    job = (match build with Some b -> b.Ci.Build.job_name | None -> "");
    build_number = (match build with Some b -> b.Ci.Build.number | None -> 0);
    result;
    retry_lineage = (match build with Some b -> retry_lineage t b | None -> []);
    hosts;
    node_health = node_health_of t hosts;
    invariants = failing_invariants t ~since;
    active_faults = fault_context t hosts;
    canonical;
    evidence;
  }

(* ---- filing -------------------------------------------------------------- *)

let keep_bundle t bundle =
  if t.cfg.keep_bundles > 0 then begin
    let kept = bundle :: t.recent in
    t.recent <-
      (if List.length kept > t.cfg.keep_bundles then
         List.filteri (fun i _ -> i < t.cfg.keep_bundles) kept
       else kept)
  end

let file_bundle t bundle =
  t.bundles <- t.bundles + 1;
  keep_bundle t bundle;
  let key = canonical_signature bundle.canonical in
  (* A retried build re-reporting the failure its predecessor already
     filed within the window is collapsed client-side: watchdog/retry
     storms must not inflate occurrence counts. *)
  let collapse =
    bundle.retry_lineage <> []
    && (match Hashtbl.find_opt t.last_filed key with
       | Some (job, at) ->
         String.equal job bundle.job && bundle.at -. at < t.cfg.dedup_window
       | None -> false)
  in
  if collapse then t.collapsed <- t.collapsed + 1
  else begin
    (* The collapse cache only needs the recent past; flush it before it
       grows beyond the live-signature order of magnitude. *)
    if Hashtbl.length t.last_filed > 4 * t.cfg.limits.Bugtracker.max_live then
      Hashtbl.reset t.last_filed;
    Hashtbl.replace t.last_filed key (bundle.job, bundle.at);
    let evidence = { bundle.evidence with Bugtracker.signature = key } in
    match Bugtracker.file t.tracker ~now:bundle.at evidence with
    | `New bug ->
      t.filed <- t.filed + 1;
      Env.tracef t.env ~category:"bug" "filed #%d [%s] %s" bug.Bugtracker.id
        bug.Bugtracker.category bug.Bugtracker.summary
    | `Duplicate _ -> t.duplicates <- t.duplicates + 1
  end

(* Triage-path fault drills: evidence bundles can be lost before filing,
   or filed late.  Dedup counts must converge to the same distinct bugs
   regardless (only occurrence totals shrink with the losses). *)
let deliver t bundle =
  match (t.cfg.drill, t.rng) with
  | Some drill, Some rng ->
    if drill.evidence_loss > 0.0 && Simkit.Prng.chance rng drill.evidence_loss
    then begin
      t.lost <- t.lost + 1;
      Env.tracef t.env ~category:"triage" "evidence lost for %s"
        (canonical_signature bundle.canonical)
    end
    else if drill.filing_delay > 0.0 then begin
      t.delayed <- t.delayed + 1;
      ignore
        (Simkit.Engine.schedule (Env.engine t.env) ~label:"triage-delay"
           ~delay:drill.filing_delay (fun _ ->
             file_bundle t { bundle with at = Env.now t.env }))
    end
    else file_bundle t bundle
  | _ -> file_bundle t bundle

let unscheduled_evidence (build : Ci.Build.t) =
  {
    Bugtracker.signature = "unsched:" ^ build.Ci.Build.job_name;
    summary =
      Printf.sprintf "%s could not be scheduled (marked UNSTABLE)"
        build.Ci.Build.job_name;
    category = "ci";
    source_test = build.Ci.Build.job_name;
    fault_ids = [];
  }

let observe t ~build ~result evidences =
  t.builds_observed <- t.builds_observed + 1;
  match result with
  | Ci.Build.Success | Ci.Build.Aborted | Ci.Build.Not_built -> ()
  | Ci.Build.Unstable ->
    t.unstable_observed <- t.unstable_observed + 1;
    if t.cfg.file_unstable then
      deliver t (assemble t ~build ~result (unscheduled_evidence build));
    List.iter (fun e -> deliver t (assemble t ~build ~result e)) evidences
  | Ci.Build.Failure ->
    List.iter (fun e -> deliver t (assemble t ~build ~result e)) evidences

let ingest t evidence =
  deliver t (assemble t ~result:Ci.Build.Failure evidence)

let recent_bundles t = t.recent

(* ---- reporting ----------------------------------------------------------- *)

let flapping_count t = Hashtbl.length t.flappers

let summary t =
  {
    builds_observed = t.builds_observed;
    bundles = t.bundles;
    filed = t.filed;
    duplicates = t.duplicates;
    collapsed = t.collapsed;
    lost = t.lost;
    delayed = t.delayed;
    unstable_observed = t.unstable_observed;
    dedup_ratio =
      (let reached = t.filed + t.duplicates in
       if t.filed = 0 then (if reached = 0 then 1.0 else float_of_int reached)
       else float_of_int reached /. float_of_int t.filed);
    reopens = t.reopens;
    flapping = flapping_count t;
    escalations = t.escalations;
    mttr_days_by_category =
      Hashtbl.fold
        (fun category (total, n) acc ->
          (category, total /. float_of_int n /. Simkit.Calendar.day, n) :: acc)
        t.mttr []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b);
    store = Bugtracker.stats t.tracker;
  }

let summary_to_json (s : summary) =
  let open Simkit.Json in
  Obj
    [ ("builds_observed", Int s.builds_observed);
      ("bundles", Int s.bundles);
      ("filed", Int s.filed);
      ("duplicates", Int s.duplicates);
      ("collapsed", Int s.collapsed);
      ("lost", Int s.lost);
      ("delayed", Int s.delayed);
      ("unstable_observed", Int s.unstable_observed);
      ("dedup_ratio", Float s.dedup_ratio);
      ("reopens", Int s.reopens);
      ("flapping", Int s.flapping);
      ("escalations", Int s.escalations);
      ( "mttr_days_by_category",
        List
          (List.map
             (fun (category, days, n) ->
               Obj
                 [ ("category", String category); ("mean_days", Float days);
                   ("fixes", Int n) ])
             s.mttr_days_by_category) );
      ( "store",
        Obj
          [ ("live", Int s.store.Bugtracker.live);
            ("filed_total", Int s.store.Bugtracker.filed_total);
            ("fixed_total", Int s.store.Bugtracker.fixed_total);
            ("evicted", Int s.store.Bugtracker.evicted);
            ("resurrected", Int s.store.Bugtracker.resurrected);
            ( "tombstoned_occurrences",
              Int s.store.Bugtracker.tombstoned_occurrences );
            ("peak_live", Int s.store.Bugtracker.peak_live) ] ) ]

let render (s : summary) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun line -> Buffer.add_string buf (line ^ "\n")) fmt in
  add "builds observed %d (%d unstable); %d bundles -> %d bugs, %d duplicates"
    s.builds_observed s.unstable_observed s.bundles s.filed s.duplicates;
  add "dedup ratio %.2f; collapsed %d, lost %d, delayed %d" s.dedup_ratio
    s.collapsed s.lost s.delayed;
  add "reopens %d, flapping %d, escalations %d" s.reopens s.flapping s.escalations;
  add "store: %d live (peak %d), %d distinct filed, %d evicted (%d occurrences \
       tombstoned), %d resurrected"
    s.store.Bugtracker.live s.store.Bugtracker.peak_live
    s.store.Bugtracker.filed_total s.store.Bugtracker.evicted
    s.store.Bugtracker.tombstoned_occurrences s.store.Bugtracker.resurrected;
  if s.mttr_days_by_category <> [] then begin
    add "MTTR by category:";
    List.iter
      (fun (category, days, n) ->
        add "  %-15s %.1f days over %d fix(es)" category days n)
      s.mttr_days_by_category
  end;
  Buffer.contents buf
