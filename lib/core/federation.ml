type driver =
  | Sequential
  | Interleaved of int64
  | Parallel
  | Reference

let driver_to_string = function
  | Sequential -> "sequential"
  | Interleaved seed -> Printf.sprintf "interleaved(%Ld)" seed
  | Parallel -> "parallel"
  | Reference -> "reference"

type config = {
  testbeds : int;
  shards : int;
  names : string list;
  lookahead : float;
  seed : int64;
  base : Campaign.config;
  ranges : Testbed.Fleet.ranges;
  backbone_faults_per_year : float;
  backbone_outage_hours : float;
  global_vlans : int;
  vlan_request_period : float;
  audit_period : float;
  driver : driver;
}

(* Cross-testbed effects decided at a barrier never reach a member
   engine sooner than this: VLAN grants take [min_cross_latency] to set
   up, and backbone onsets are drawn at least this far after the
   barrier.  A lookahead window of at least this size is therefore
   conservative: nothing computed at barrier [t] can land in (t, t +
   min_cross_latency). *)
let min_cross_latency = 300.0
let link_duration = 600.0
let year = 365.0 *. Simkit.Calendar.day

let default_config =
  {
    testbeds = 10;
    shards = 4;
    names = [];
    lookahead = 6.0 *. Simkit.Calendar.hour;
    seed = 42L;
    base = { Campaign.default_config with Campaign.months = 2 };
    ranges = Testbed.Fleet.default_ranges;
    backbone_faults_per_year = 6.0;
    backbone_outage_hours = 4.0;
    global_vlans = 3;
    vlan_request_period = 2.0 *. Simkit.Calendar.day;
    audit_period = Simkit.Calendar.day;
    driver = Sequential;
  }

let synthesize cfg =
  Testbed.Fleet.synthesize ~seed:cfg.seed ~count:cfg.testbeds ~names:cfg.names
    cfg.ranges

let member_campaign cfg (spec : Testbed.Fleet.spec) =
  {
    cfg.base with
    Campaign.seed = spec.Testbed.Fleet.seed;
    executors = spec.Testbed.Fleet.executors;
    fault_rate_per_day =
      cfg.base.Campaign.fault_rate_per_day *. spec.Testbed.Fleet.fault_bias;
    workload =
      Option.map
        (fun p -> Oar.Workload.scale p spec.Testbed.Fleet.workload_scale)
        cfg.base.Campaign.workload;
  }

type coordination = {
  barriers : int;
  backbone_faults : int;
  vlan_requests : int;
  vlan_grants : int;
  vlan_denials : int;
  link_tests : int;
  link_failures : int;
  audits : int;
  min_in_service : int;
  mean_active_faults : float;
}

type member_report = {
  spec : Testbed.Fleet.spec;
  report : Campaign.report;
  events : int;
}

type report = {
  fed_cfg : config;
  members : member_report list;
  coordination : coordination;
  aggregate_builds : int;
  aggregate_successes : int;
  aggregate_success_ratio : float;
  aggregate_bugs_filed : int;
  aggregate_bugs_fixed : int;
  aggregate_faults_injected : int;
  aggregate_faults_detected : int;
  aggregate_faults_repaired : int;
  aggregate_workload_jobs : int;
  aggregate_nodes : int;
  events_total : int;
}

(* ---- runtime state ------------------------------------------------------- *)

(* One member = one complete private simulation.  The only mutable
   fields touched while a window advances are [link_tests] and
   [link_failures] (bumped by the member's own engine events, hence by
   the member's shard exclusively); everything else is coordinator-only,
   between windows.  Domain spawn/join orders the two. *)
type mstate = {
  spec_ : Testbed.Fleet.spec;
  sim : Campaign.sim;
  eng : Simkit.Engine.t;
  menv : Env.t;
  link_rng : Simkit.Prng.t;
  mutable requests : int;
  mutable grants : int;
  mutable denials : int;
  mutable link_tests : int;
  mutable link_failures : int;
  mutable next_want : float;
}

type coord = {
  mutable barriers : int;
  mutable backbone_faults : int;
  mutable audits : int;
  mutable min_in_service : int;
  mutable active_sum : float;
  mutable next_audit : float;
  mutable grant_expiries : float list;
  coord_rng : Simkit.Prng.t;
}

let validate cfg =
  if cfg.testbeds <= 0 then invalid_arg "Federation.run: testbeds must be positive";
  if cfg.shards <= 0 then invalid_arg "Federation.run: shards must be positive";
  if cfg.shards > cfg.testbeds then
    invalid_arg "Federation.run: more shards than testbeds";
  if not (cfg.lookahead > 0.0) then
    invalid_arg "Federation.run: lookahead must be positive";
  let specs = synthesize cfg in
  let ids = List.map (fun s -> s.Testbed.Fleet.id) specs in
  let sorted = List.sort_uniq String.compare ids in
  if List.length sorted <> List.length ids then
    invalid_arg "Federation.run: duplicate member ids";
  specs

(* Members in service / active faults across the whole federation — the
   coupling state the coordinator aggregates at audits.  The [Reference]
   driver re-establishes it after every event, which is what a
   zero-lookahead coordinator must do: without the window contract, any
   event might have changed it. *)
let coupling_scan members =
  let in_service = ref 0 and active = ref 0 in
  Array.iter
    (fun m ->
      let nodes = m.menv.Env.instance.Testbed.Instance.nodes in
      Array.iter (fun n -> if Testbed.Node.in_service n then incr in_service) nodes;
      active := !active + List.length (Testbed.Faults.active (Env.faults m.menv)))
    members;
  (!in_service, !active)

let member_partitioned m =
  List.exists
    (fun f -> f.Testbed.Faults.kind = Testbed.Faults.Network_partition)
    (Testbed.Faults.active (Env.faults m.menv))

(* ---- barrier ------------------------------------------------------------- *)

(* Runs with every member stopped exactly at time [t]; schedules all
   cross-testbed effects for strictly later instants.  Determinism: all
   draws come from the coordinator stream (consumed in a fixed order) or
   from per-member streams consumed only by that member's events, and
   every read of member state happens at the barrier — identical
   whatever shard count or service order produced it. *)
let coordinate cfg coord members ~t ~wend =
  coord.barriers <- coord.barriers + 1;
  (* 1. Kavlan global VLANs: expire old grants, then arbitrate this
     barrier's requests in member order. *)
  coord.grant_expiries <-
    List.filter (fun expiry -> expiry > t) coord.grant_expiries;
  Array.iter
    (fun m ->
      while m.next_want <= t do
        m.next_want <- m.next_want +. cfg.vlan_request_period;
        m.requests <- m.requests + 1;
        if List.length coord.grant_expiries < cfg.global_vlans then begin
          m.grants <- m.grants + 1;
          let fire = t +. min_cross_latency in
          coord.grant_expiries <- (fire +. link_duration) :: coord.grant_expiries;
          ignore
            (Simkit.Engine.schedule_at m.eng ~label:"federation-link" ~time:fire
               (fun _ ->
                 m.link_tests <- m.link_tests + 1;
                 let flaky = Simkit.Prng.chance m.link_rng 0.08 in
                 if flaky || member_partitioned m then
                   m.link_failures <- m.link_failures + 1))
        end
        else m.denials <- m.denials + 1
      done)
    members;
  (* 2. Backbone faults: federation-wide events partitioning the same
     site on every member at the same instant. *)
  let mean = cfg.backbone_faults_per_year *. ((wend -. t) /. year) in
  let n = if mean > 0.0 then Simkit.Dist.poisson coord.coord_rng ~mean else 0 in
  for _ = 1 to n do
    let onset =
      t +. min_cross_latency +. (Simkit.Prng.float coord.coord_rng *. (wend -. t))
    in
    let site = Simkit.Prng.choose_list coord.coord_rng Testbed.Inventory.sites in
    let duration = cfg.backbone_outage_hours *. Simkit.Calendar.hour in
    coord.backbone_faults <- coord.backbone_faults + 1;
    Array.iter
      (fun m ->
        ignore
          (Simkit.Engine.schedule_at m.eng ~label:"federation-backbone"
             ~time:onset (fun eng ->
               let faults = Env.faults m.menv in
               match
                 Testbed.Faults.inject_on faults
                   ~now:(Simkit.Engine.now eng)
                   Testbed.Faults.Network_partition (Testbed.Faults.Site site)
               with
               | Some fault ->
                 Env.tracef m.menv ~category:"federation" "backbone #%d %s"
                   fault.Testbed.Faults.id fault.Testbed.Faults.what;
                 ignore
                   (Simkit.Engine.schedule eng ~delay:duration (fun eng ->
                        Testbed.Faults.repair faults
                          ~now:(Simkit.Engine.now eng) fault))
               | None -> ())))
      members
  done;
  (* 3. Federation-wide health audit: aggregate in-service nodes and
     active faults across all members. *)
  while coord.next_audit <= t do
    coord.next_audit <- coord.next_audit +. cfg.audit_period;
    let in_service, active = coupling_scan members in
    coord.audits <- coord.audits + 1;
    if in_service < coord.min_in_service then coord.min_in_service <- in_service;
    coord.active_sum <- coord.active_sum +. float_of_int active
  done

(* ---- drivers ------------------------------------------------------------- *)

let advance_sequential cfg members ~wend =
  (* Round-robin over shards: shard 0's members first, then shard 1's —
     the order the parallel driver merely overlaps. *)
  for s = 0 to cfg.shards - 1 do
    Array.iteri
      (fun i m -> if i mod cfg.shards = s then Simkit.Engine.run_until m.eng wend)
      members
  done

let advance_interleaved order rng members ~wend =
  Simkit.Prng.shuffle rng order;
  Array.iter (fun i -> Simkit.Engine.run_until members.(i).eng wend) order

let advance_parallel cfg members ~wend =
  if cfg.shards = 1 then advance_sequential cfg members ~wend
  else begin
    let shard s =
      Array.to_list members
      |> List.filteri (fun i _ -> i mod cfg.shards = s)
    in
    let domains =
      List.init cfg.shards (fun s ->
          let mine = shard s in
          Domain.spawn (fun () ->
              List.iter (fun m -> Simkit.Engine.run_until m.eng wend) mine))
    in
    List.iter Domain.join domains
  end

(* The unsharded baseline: one global event loop over the whole
   federation, always executing the earliest pending event across all
   members (ties to the lowest member index), and re-establishing the
   cross-testbed coupling state after every event — the conservative
   zero-lookahead discipline an unsharded engine must follow, since any
   event may have changed what the coordinator can see.  Produces
   byte-identical results; the federation benchmark (E18) measures its
   aggregate throughput against the sharded drivers. *)
let advance_reference members ~wend =
  let continue_ = ref true in
  while !continue_ do
    let best = ref (-1) and best_t = ref infinity in
    Array.iteri
      (fun i m ->
        match Simkit.Engine.next_time m.eng with
        | Some ti when ti <= wend && ti < !best_t ->
          best := i;
          best_t := ti
        | _ -> ())
      members;
    if !best < 0 then continue_ := false
    else begin
      ignore (Simkit.Engine.step members.(!best).eng);
      ignore (Sys.opaque_identity (coupling_scan members))
    end
  done;
  Array.iter (fun m -> Simkit.Engine.run_until m.eng wend) members

(* ---- run ----------------------------------------------------------------- *)

let run cfg =
  let specs = validate cfg in
  (* The family->configs expansion cache is process-global; fill it
     before any domain runs so parallel windows only ever read it. *)
  List.iter (fun f -> ignore (Testdef.expand f)) Testdef.all_families;
  let members =
    specs
    |> List.map (fun spec ->
           let sim = Campaign.prepare (member_campaign cfg spec) in
           {
             spec_ = spec;
             sim;
             eng = Campaign.sim_engine sim;
             menv = Campaign.sim_env sim;
             link_rng =
               Simkit.Prng.create
                 (Simkit.Prng.derive cfg.seed
                    (Simkit.Streams.federation_link_tag spec.Testbed.Fleet.index));
             requests = 0;
             grants = 0;
             denials = 0;
             link_tests = 0;
             link_failures = 0;
             next_want =
               cfg.vlan_request_period
               *. float_of_int (spec.Testbed.Fleet.index + 1)
               /. float_of_int cfg.testbeds;
           })
    |> Array.of_list
  in
  let horizon = Campaign.sim_horizon members.(0).sim in
  let coord =
    {
      barriers = 0;
      backbone_faults = 0;
      audits = 0;
      min_in_service = max_int;
      active_sum = 0.0;
      next_audit = cfg.audit_period;
      grant_expiries = [];
      coord_rng =
        Simkit.Prng.create (Simkit.Prng.derive cfg.seed Simkit.Streams.coordinator_tag);
    }
  in
  let interleave =
    match cfg.driver with
    | Interleaved seed ->
      Some
        ( Array.init cfg.testbeds (fun i -> i),
          Simkit.Prng.create (Simkit.Prng.derive seed Simkit.Streams.interleave_tag) )
    | _ -> None
  in
  let t = ref 0.0 in
  while !t < horizon do
    let wend = Float.min (!t +. cfg.lookahead) horizon in
    coordinate cfg coord members ~t:!t ~wend;
    (match cfg.driver with
     | Sequential -> advance_sequential cfg members ~wend
     | Interleaved _ ->
       let order, rng = Option.get interleave in
       advance_interleaved order rng members ~wend
     | Parallel -> advance_parallel cfg members ~wend
     | Reference -> advance_reference members ~wend);
    t := wend
  done;
  let member_reports =
    Array.to_list members
    |> List.map (fun m ->
           {
             spec = m.spec_;
             report = Campaign.finalize m.sim;
             events = Simkit.Engine.events_executed m.eng;
           })
  in
  let sum f = List.fold_left (fun acc mr -> acc + f mr) 0 member_reports in
  let monthly_sum f =
    sum (fun mr ->
        List.fold_left (fun acc mo -> acc + f mo) 0 mr.report.Campaign.monthly)
  in
  let builds = monthly_sum (fun mo -> mo.Campaign.builds) in
  let successes = monthly_sum (fun mo -> mo.Campaign.successful) in
  let total_nodes = cfg.testbeds * Testbed.Inventory.total_nodes in
  {
    fed_cfg = cfg;
    members = member_reports;
    coordination =
      {
        barriers = coord.barriers;
        backbone_faults = coord.backbone_faults;
        vlan_requests = Array.fold_left (fun a m -> a + m.requests) 0 members;
        vlan_grants = Array.fold_left (fun a m -> a + m.grants) 0 members;
        vlan_denials = Array.fold_left (fun a m -> a + m.denials) 0 members;
        link_tests = Array.fold_left (fun a m -> a + m.link_tests) 0 members;
        link_failures = Array.fold_left (fun a m -> a + m.link_failures) 0 members;
        audits = coord.audits;
        min_in_service =
          (if coord.audits = 0 then total_nodes else coord.min_in_service);
        mean_active_faults =
          (if coord.audits = 0 then nan
           else coord.active_sum /. float_of_int coord.audits);
      };
    aggregate_builds = builds;
    aggregate_successes = successes;
    aggregate_success_ratio =
      (if builds = 0 then nan else float_of_int successes /. float_of_int builds);
    aggregate_bugs_filed = sum (fun mr -> mr.report.Campaign.bugs_filed);
    aggregate_bugs_fixed = sum (fun mr -> mr.report.Campaign.bugs_fixed);
    aggregate_faults_injected = sum (fun mr -> mr.report.Campaign.faults_injected);
    aggregate_faults_detected = sum (fun mr -> mr.report.Campaign.faults_detected);
    aggregate_faults_repaired = sum (fun mr -> mr.report.Campaign.faults_repaired);
    aggregate_workload_jobs = sum (fun mr -> mr.report.Campaign.workload_jobs);
    aggregate_nodes = total_nodes;
    events_total = sum (fun mr -> mr.events);
  }

(* ---- rendering ----------------------------------------------------------- *)

let coordination_to_json (c : coordination) =
  Simkit.Json.Obj
    [ ("barriers", Simkit.Json.Int c.barriers);
      ("backbone_faults", Simkit.Json.Int c.backbone_faults);
      ("vlan_requests", Simkit.Json.Int c.vlan_requests);
      ("vlan_grants", Simkit.Json.Int c.vlan_grants);
      ("vlan_denials", Simkit.Json.Int c.vlan_denials);
      ("link_tests", Simkit.Json.Int c.link_tests);
      ("link_failures", Simkit.Json.Int c.link_failures);
      ("audits", Simkit.Json.Int c.audits);
      ("min_in_service", Simkit.Json.Int c.min_in_service);
      ("mean_active_faults", Simkit.Json.Float c.mean_active_faults) ]

let report_to_json ?(full = false) r =
  let open Simkit.Json in
  let member mr =
    let s = mr.spec in
    let common =
      [ ("id", String s.Testbed.Fleet.id);
        ("seed", String (Int64.to_string s.Testbed.Fleet.seed));
        ("fault_bias", Float s.Testbed.Fleet.fault_bias);
        ("executors", Int s.Testbed.Fleet.executors);
        ("workload_scale", Float s.Testbed.Fleet.workload_scale);
        ("events", Int mr.events) ]
    in
    let tail =
      if full then [ ("report", Report.to_json mr.report) ]
      else
        [ ("builds", Int mr.report.Campaign.builds_total);
          ("bugs_filed", Int mr.report.Campaign.bugs_filed);
          ("bugs_fixed", Int mr.report.Campaign.bugs_fixed);
          ("faults_injected", Int mr.report.Campaign.faults_injected);
          ("workload_jobs", Int mr.report.Campaign.workload_jobs) ]
    in
    Obj (common @ tail)
  in
  Obj
    [ ("testbeds", Int r.fed_cfg.testbeds);
      ("shards", Int r.fed_cfg.shards);
      ("lookahead_s", Float r.fed_cfg.lookahead);
      ("seed", String (Int64.to_string r.fed_cfg.seed));
      ("driver", String (driver_to_string r.fed_cfg.driver));
      ("months", Int r.fed_cfg.base.Campaign.months);
      ("coordination", coordination_to_json r.coordination);
      ( "aggregate",
        Obj
          [ ("nodes", Int r.aggregate_nodes);
            ("builds", Int r.aggregate_builds);
            ("successes", Int r.aggregate_successes);
            ("success_ratio", Float r.aggregate_success_ratio);
            ("bugs_filed", Int r.aggregate_bugs_filed);
            ("bugs_fixed", Int r.aggregate_bugs_fixed);
            ("faults_injected", Int r.aggregate_faults_injected);
            ("faults_detected", Int r.aggregate_faults_detected);
            ("faults_repaired", Int r.aggregate_faults_repaired);
            ("workload_jobs", Int r.aggregate_workload_jobs);
            ("events", Int r.events_total) ] );
      ("members", List (List.map member r.members)) ]

let render r =
  let rows =
    List.map
      (fun mr ->
        let s = mr.spec in
        [ s.Testbed.Fleet.id;
          Printf.sprintf "%.2f" s.Testbed.Fleet.fault_bias;
          string_of_int s.Testbed.Fleet.executors;
          Printf.sprintf "%.2f" s.Testbed.Fleet.workload_scale;
          string_of_int mr.report.Campaign.builds_total;
          Statuspage.fmt_ratio
            (let b, su =
               List.fold_left
                 (fun (b, su) mo -> (b + mo.Campaign.builds, su + mo.Campaign.successful))
                 (0, 0) mr.report.Campaign.monthly
             in
             if b = 0 then nan else float_of_int su /. float_of_int b);
          string_of_int mr.report.Campaign.bugs_filed;
          string_of_int mr.report.Campaign.faults_injected;
          string_of_int mr.events ])
      r.members
  in
  let c = r.coordination in
  Simkit.Table.render
    ~header:
      [ "testbed"; "bias"; "exec"; "load"; "builds"; "success"; "bugs";
        "faults"; "events" ]
    rows
  ^ Printf.sprintf
      "federation: %d testbeds (%d nodes), %d shards, %s driver, lookahead %.0f s\n"
      r.fed_cfg.testbeds r.aggregate_nodes r.fed_cfg.shards
      (driver_to_string r.fed_cfg.driver)
      r.fed_cfg.lookahead
  ^ Printf.sprintf
      "coordination: %d barriers, %d backbone faults, VLANs %d/%d granted (%d denied), %d link tests (%d failed), %d audits\n"
      c.barriers c.backbone_faults c.vlan_grants c.vlan_requests c.vlan_denials
      c.link_tests c.link_failures c.audits
  ^ Printf.sprintf
      "aggregate: %d builds (success %s), %d bugs filed (%d fixed), %d faults injected, %d events\n"
      r.aggregate_builds
      (Statuspage.fmt_ratio r.aggregate_success_ratio)
      r.aggregate_bugs_filed r.aggregate_bugs_fixed r.aggregate_faults_injected
      r.events_total
