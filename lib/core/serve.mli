(** The status page as a long-lived serving layer.

    The paper's status page is not just a report: it is a service that
    operators and users hit continuously, including while the testbed
    (and the testing infrastructure itself) is misbehaving.  This module
    simulates that service in front of a {!Statuspage} aggregate and
    makes it robust along four axes:

    - {b O(delta) snapshots}: rendered pages are cached and stamped with
      the page's {!Statuspage.generation}; a read after a build
      completion re-renders at most once (single flight), every other
      read is a cache hit, and conditional reads carrying the current
      ETag are answered [Not_modified] without any body.
    - {b Load shedding}: admission goes through a token bucket
      ([rate_limit]/[burst]) backed by a bounded queue ([queue_limit]);
      demand beyond both is {e explicitly} shed and counted, never
      silently dropped — every read resolves as fresh, not-modified,
      stale, fallback or shed.
    - {b Graceful degradation}: under queue pressure the service walks a
      [Fresh -> Stale -> Static_fallback] ladder (stale-while-revalidate
      in the middle rung), fires a {!Monitoring.Alerts.Serving_degraded}
      alert while off the top rung, and only climbs back after
      [hysteresis_s] of calm so it cannot flap.
    - {b Crash recovery}: a {!Testbed.Faults.Serve_crash} fault wipes
      the in-memory aggregates and snapshot cache mid-campaign; the
      service rebuilds by replaying its build-completion journal through
      {!Statuspage.apply}, serving the static fallback for [rebuild_s],
      and converges to pages byte-identical to a run that never crashed.

    The synthetic read workload (Poisson arrivals with deterministic
    daily flash crowds) is driven by engine events but draws from a
    dedicated PRNG seeded by [workload_seed], so attaching the service
    leaves every other subsystem's random sequence — and therefore the
    campaign's decisions and report — byte-for-byte unchanged. *)

type mode = Fresh | Stale | Static_fallback

val mode_to_string : mode -> string

type config = {
  rate_limit : float;  (** admitted reads per second (token refill rate) *)
  burst : float;  (** token bucket capacity *)
  queue_limit : int;  (** reads parked when the bucket is empty *)
  stale_queue : int;  (** queue depth at which serving degrades to [Stale] *)
  fallback_queue : int;
      (** queue depth at which serving degrades to [Static_fallback];
          must exceed [stale_queue] (Trustlint L014) *)
  hysteresis_s : float;
      (** seconds of calm required before climbing back up the ladder *)
  rebuild_s : float;
      (** static-fallback window after a crash recovery replay *)
  tick_period : float;  (** service loop period, seconds *)
  readers_per_s : float;  (** offered load (mean Poisson arrival rate) *)
  conditional_fraction : float;
      (** fraction of admitted reads carrying an [If-None-Match] with
          the ETag of the previously served page *)
  flash_every : float;
      (** period of deterministic flash crowds ([0.] disables them) *)
  flash_duration : float;  (** seconds each flash crowd lasts *)
  flash_multiplier : float;  (** offered-load multiplier during a flash *)
  workload_seed : int64;
      (** dedicated PRNG seed — the workload never touches the engine's
          master stream, so serving is invisible to the campaign *)
}

val default_config : config
(** Modest defaults: 2 readers/s against a 20 reads/s admission rate,
    with a daily 50x flash crowd that overwhelms admission and exercises
    the full shed/degrade/recover ladder. *)

(** One admitted read's outcome ([Shed] when admission refused it). *)
type response =
  | Page of { body : string; etag : string; mode : mode; staleness : float }
  | Not_modified of string  (** the matching ETag *)
  | Shed

type summary = {
  reads : int;  (** resolved reads: served + shed *)
  fresh : int;
  not_modified : int;
  stale : int;
  fallback : int;
  shed : int;
  queued_now : int;  (** still parked when the campaign ended *)
  queued_peak : int;
  renders : int;  (** full page renders actually performed *)
  renders_saved : int;  (** served reads answered without rendering *)
  crashes : int;
  recoveries : int;
  degraded_seconds : float;  (** time spent off the [Fresh] rung *)
  alerts_fired : int;
  staleness_p50 : float;
  staleness_p99 : float;
  staleness_max : float;
  hit_ratio : float;  (** renders_saved / served *)
}

type t

val attach :
  ?alerts:Monitoring.Alerts.t -> config:config -> Env.t -> Statuspage.t -> t
(** Start the service: subscribes a journal listener to build
    completions, schedules the (jitter-free) service loop on the
    environment's engine, and begins draining the synthetic workload.
    [alerts] receives {!Monitoring.Alerts.Serving_degraded}
    notifications when provided. *)

val read : t -> ?if_none_match:string -> unit -> response
(** One on-demand read through the same admission, cache and
    degradation path as the synthetic workload (used by tests and the
    [g5ktest serve] command). *)

val mode : t -> mode
val etag : t -> string option
(** ETag of the cached snapshot, [None] before the first render. *)

val summary : t -> summary
val busy_seconds : t -> float
(** Wall-clock seconds spent inside the service loop, when a clock was
    installed with {!set_clock}; [0.] otherwise. *)

val set_clock : t -> (unit -> float) -> unit
(** Install a wall-clock probe (the serve benchmark injects
    [Unix.gettimeofday]); the library itself never reads real time. *)

val render : summary -> string
(** ASCII table for the campaign status page's serving section. *)

val summary_to_json : summary -> Simkit.Json.t
