(** Discrete-event simulation engine.

    Time is a float number of simulated seconds since the campaign epoch.
    Events are closures scheduled at absolute times; same-time events fire
    in scheduling order, making runs deterministic for a given seed. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time [0.].  [seed] (default [42L]) seeds the master
    PRNG from which all simulation randomness is split. *)

val now : t -> float
(** Current simulated time in seconds. *)

val rng : t -> Prng.t
(** The engine's master PRNG stream.  Subsystems should [Prng.split] it
    once at construction rather than sharing it. *)

val schedule : t -> ?label:string -> delay:float -> (t -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. max 0. delay].  [label]
    names the event's logical source (e.g. ["scheduler"]); it is only
    read by the {!Audit} race detector and has no scheduling effect. *)

val schedule_at : t -> ?label:string -> time:float -> (t -> unit) -> handle
(** Absolute-time variant; times in the past fire at the current time. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op
    and leaves no bookkeeping behind: the engine only remembers
    cancellations of events still waiting in the queue. *)

val cancelled : t -> handle -> bool

val every : t -> ?label:string -> period:float -> ?jitter:float -> (t -> bool) -> unit
(** [every t ~period f] runs [f] now and then every [period] seconds
    (plus uniform jitter in [\[0, jitter\]]) until [f] returns [false].
    When [jitter > 0.] the jitter values come from a dedicated PRNG
    stream split off the master once at registration, so a jittered
    timer never perturbs the deterministic sequence consumed by other
    subsystems; [jitter = 0.] draws nothing at all. *)

val step : t -> bool
(** Execute the next pending event.  [false] if the queue is empty. *)

val next_time : t -> float option
(** Firing time of the next queued (possibly cancelled) event, without
    consuming it.  [step]ping while [next_time t <= Some horizon] drains
    exactly the events [run_until t horizon] would; external drivers
    (e.g. the engine benchmark) use this to instrument the loop. *)

val run_until : t -> float -> unit
(** Execute events up to and including time [t]; afterwards [now] equals
    the given horizon even if the queue drained early. *)

val run : t -> unit
(** Drain the whole event queue. *)

val pending : t -> int
(** Number of scheduled, not-yet-cancelled events. *)

val events_executed : t -> int
(** Total events executed so far (for engine benchmarks). *)

val set_observer : t -> (time:float -> label:string option -> unit) option -> unit
(** Install (or clear, with [None]) the post-event hook: called after
    every executed event with its firing time and source label.  [None]
    by default, costing one pattern match per event; {!Audit} uses it to
    detect same-timestamp event-ordering races.  Observers must not
    mutate simulation state. *)
