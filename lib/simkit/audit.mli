(** Opt-in runtime invariant auditor.

    Cross-checks live simulation state against ground truth at a fixed
    cadence, and watches per-event state digests to flag same-timestamp
    event-ordering races.  Entirely passive: when not started it costs
    nothing, and even when running it draws no engine randomness, so an
    audited campaign replays the unaudited one's decisions exactly. *)

type t

type violation = { at : float; check : string; detail : string }
(** One failed invariant: simulated time, check (or probe) name, and a
    human-readable explanation. *)

val create : ?period:float -> Engine.t -> t
(** Auditor running registered checks every [period] simulated seconds
    (default 6 h).  @raise Invalid_argument if [period <= 0]. *)

val register : t -> name:string -> (unit -> (unit, string) result) -> unit
(** Add an invariant check, run at every cadence tick.  [Error detail]
    (or an exception) records a {!violation}.
    @raise Invalid_argument on duplicate [name]. *)

val watch : t -> name:string -> (unit -> int) -> unit
(** Add a state digest probe for race detection.  The digest is sampled
    after every executed event once {!start}ed; when two time-tied events
    from distinct labelled sources (see {!Engine.schedule}) both change
    the same digest, their commutation would change observed state and an
    ["event-order-race"] violation is recorded (deduplicated per instant
    and probe).  @raise Invalid_argument on duplicate [name]. *)

val start : t -> unit
(** Install the engine observer (only if probes exist) and schedule the
    cadence loop.  Idempotent. *)

val stop : t -> unit
(** Stop auditing: the cadence loop unwinds at its next tick and the
    observer is removed immediately. *)

val violations : t -> violation list
(** All recorded violations, oldest first. *)

val checks_run : t -> int
val events_observed : t -> int
val races_flagged : t -> int

type summary = {
  checks_run : int;
  violations : violation list;
  races_flagged : int;
  events_observed : int;
}

val summary : t -> summary

val violation_to_json : violation -> Json.t
val summary_to_json : summary -> Json.t
