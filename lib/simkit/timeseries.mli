(** Append-only time series, the storage behind the monitoring service
    and the status page's historical view. *)

type t

val create :
  ?capacity:int -> ?cadence:float -> ?max_points:int -> name:string -> unit -> t
(** [cadence] arms {!add_binned} accumulation buckets of that many
    seconds; [max_points] bounds memory — when full, the oldest quarter
    of the samples is discarded in O(1) amortized time (see {!dropped}).
    @raise Invalid_argument on non-positive [cadence] or [max_points < 2]. *)

val name : t -> string

val add : t -> time:float -> float -> unit
(** Samples must be appended in non-decreasing time order.
    @raise Invalid_argument when going backwards. *)

val add_binned : t -> time:float -> float -> unit
(** With a [cadence], accumulate [v] into the bucket containing [time]
    (buckets are keyed by their start); without one, behaves as {!add}.
    The downsampled occurrence series of the bug tracker uses this to
    stay bounded over millions of filings. *)

val dropped : t -> int
(** Samples discarded so far by the [max_points] bound (0 when
    unbounded): the series is explicit about what it forgot. *)

val length : t -> int
val last : t -> (float * float) option
val nth : t -> int -> float * float

val between : t -> lo:float -> hi:float -> (float * float) list
(** Samples with [lo <= time <= hi], in time order. *)

val values_between : t -> lo:float -> hi:float -> float array

val mean_between : t -> lo:float -> hi:float -> float
(** [nan] when the window is empty. *)

val downsample : t -> bucket:float -> (float * float) list
(** Mean per [bucket]-second window, keyed by the window start. *)

val iter : t -> (float -> float -> unit) -> unit

val sparkline : t -> lo:float -> hi:float -> width:int -> string
(** Tiny ASCII chart of the window, for live-visualisation displays. *)
