type violation = { at : float; check : string; detail : string }

type check = { check_name : string; run : unit -> (unit, string) result }

type probe = {
  probe_name : string;
  digest : unit -> int;
  mutable last_digest : int;
}

(* Most recent executed event that changed at least one probe digest:
   (time, source label, names of the probes it changed). *)
type last_change = { lc_time : float; lc_label : string option; lc_probes : string list }

type t = {
  engine : Engine.t;
  period : float;
  mutable checks : check list;  (* registration order *)
  mutable probes : probe list;
  mutable probe_arr : probe array;  (* probes snapshot for the hot path *)
  mutable changed_buf : string array;  (* scratch, length = #probes *)
  mutable violations : violation list;  (* newest first *)
  mutable checks_run : int;
  mutable events_observed : int;
  mutable races : int;
  mutable last_change : last_change option;
  race_seen : (string, unit) Hashtbl.t;
      (* "<time>:<probe>" already flagged, so a burst of same-time events
         yields one violation per (instant, probe) *)
  mutable running : bool;
}

let create ?(period = 6.0 *. 3600.0) engine =
  if period <= 0.0 then invalid_arg "Audit.create: period must be positive";
  {
    engine;
    period;
    checks = [];
    probes = [];
    probe_arr = [||];
    changed_buf = [||];
    violations = [];
    checks_run = 0;
    events_observed = 0;
    races = 0;
    last_change = None;
    race_seen = Hashtbl.create 64;
    running = false;
  }

let record t ~check ~detail =
  t.violations <- { at = Engine.now t.engine; check; detail } :: t.violations

let register t ~name run =
  if List.exists (fun c -> String.equal c.check_name name) t.checks then
    invalid_arg ("Audit.register: duplicate check " ^ name);
  t.checks <- t.checks @ [ { check_name = name; run } ]

let watch t ~name digest =
  if List.exists (fun p -> String.equal p.probe_name name) t.probes then
    invalid_arg ("Audit.watch: duplicate probe " ^ name);
  t.probes <- t.probes @ [ { probe_name = name; digest; last_digest = digest () } ];
  t.probe_arr <- Array.of_list t.probes;
  t.changed_buf <- Array.make (Array.length t.probe_arr) ""

let run_checks t =
  List.iter
    (fun c ->
      t.checks_run <- t.checks_run + 1;
      match c.run () with
      | Ok () -> ()
      | Error detail -> record t ~check:c.check_name ~detail
      | exception exn ->
        record t ~check:c.check_name
          ~detail:("check raised " ^ Printexc.to_string exn))
    t.checks

(* Same-timestamp race detection.  Two time-tied events from distinct
   labelled sources that both mutate the same watched state digest do not
   commute: swapping their execution order would change the state an
   observer sees between them.  The engine's tie-break (scheduling order)
   makes runs reproducible, but such pairs are exactly where a real
   (wall-clock) deployment could order events either way — flag them. *)
let observe t ~time ~label =
  t.events_observed <- t.events_observed + 1;
  (* Hot path: runs after every executed event when probes exist.  Scan
     the probe array into a preallocated scratch so the common
     nothing-changed case allocates nothing. *)
  let probes = t.probe_arr in
  let nchanged = ref 0 in
  for i = 0 to Array.length probes - 1 do
    let p = probes.(i) in
    let d = p.digest () in
    if d <> p.last_digest then begin
      p.last_digest <- d;
      t.changed_buf.(!nchanged) <- p.probe_name;
      incr nchanged
    end
  done;
  if !nchanged > 0 then begin
    let changed = Array.to_list (Array.sub t.changed_buf 0 !nchanged) in
    (match t.last_change with
     | Some prev when prev.lc_time = time -> (
       match (prev.lc_label, label) with
       | Some a, Some b when not (String.equal a b) ->
         List.iter
           (fun probe ->
             if List.mem probe prev.lc_probes then begin
               let key = Printf.sprintf "%h:%s" time probe in
               if not (Hashtbl.mem t.race_seen key) then begin
                 Hashtbl.replace t.race_seen key ();
                 t.races <- t.races + 1;
                 record t ~check:"event-order-race"
                   ~detail:
                     (Printf.sprintf
                        "time-tied events from sources '%s' and '%s' both \
                         changed watched state '%s' at t=%.3f"
                        a b probe time)
               end
             end)
           changed
       | _ -> ())
     | _ -> ());
    t.last_change <- Some { lc_time = time; lc_label = label; lc_probes = changed }
  end

let start t =
  if not t.running then begin
    t.running <- true;
    if t.probes <> [] then
      Engine.set_observer t.engine (Some (fun ~time ~label -> observe t ~time ~label));
    (* No jitter: the audit loop must not consume engine randomness, so
       an audited campaign replays the unaudited one's decisions. *)
    Engine.every t.engine ~label:"audit" ~period:t.period (fun _ ->
        if t.running then run_checks t;
        t.running)
  end

let stop t =
  if t.running then begin
    t.running <- false;
    if t.probes <> [] then Engine.set_observer t.engine None
  end

let violations t = List.rev t.violations
let checks_run t = t.checks_run
let events_observed t = t.events_observed
let races_flagged t = t.races

type summary = {
  checks_run : int;
  violations : violation list;
  races_flagged : int;
  events_observed : int;
}

let summary (a : t) =
  {
    checks_run = a.checks_run;
    violations = violations a;
    races_flagged = a.races;
    events_observed = a.events_observed;
  }

let violation_to_json v =
  Json.Obj
    [ ("at", Json.Float v.at);
      ("check", Json.String v.check);
      ("detail", Json.String v.detail) ]

let summary_to_json s =
  Json.Obj
    [ ("checks_run", Json.Int s.checks_run);
      ("violations", Json.List (List.map violation_to_json s.violations));
      ("races_flagged", Json.Int s.races_flagged);
      ("events_observed", Json.Int s.events_observed) ]
