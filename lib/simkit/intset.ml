(* Open-addressing set of non-negative ints, tuned for the engine's
   dense, monotonically allocated event handles: identity hashing plus
   linear probing keeps consecutive ids in consecutive slots, and
   backward-shift deletion avoids tombstone buildup under the engine's
   add-on-cancel / remove-on-pop churn. *)

type t = {
  mutable slots : int array;  (* -1 = empty *)
  mutable mask : int;  (* capacity - 1, capacity a power of two *)
  mutable size : int;
}

let min_capacity = 16

let create () =
  { slots = Array.make min_capacity (-1); mask = min_capacity - 1; size = 0 }

let cardinal t = t.size
let is_empty t = t.size = 0

let mem t k =
  let mask = t.mask in
  let slots = t.slots in
  let rec probe i =
    let v = slots.(i) in
    v = k || (v >= 0 && probe ((i + 1) land mask))
  in
  k >= 0 && probe (k land mask)

let rec add t k =
  if k < 0 then invalid_arg "Intset.add: negative key";
  let mask = t.mask in
  let slots = t.slots in
  let rec probe i =
    let v = slots.(i) in
    if v = k then ()
    else if v < 0 then begin
      slots.(i) <- k;
      t.size <- t.size + 1;
      if 2 * t.size > mask then grow t
    end
    else probe ((i + 1) land mask)
  in
  probe (k land mask)

and grow t =
  let old = t.slots in
  let cap = 2 * (t.mask + 1) in
  t.slots <- Array.make cap (-1);
  t.mask <- cap - 1;
  t.size <- 0;
  Array.iter (fun k -> if k >= 0 then add t k) old

let remove t k =
  if k >= 0 then begin
    let mask = t.mask in
    let slots = t.slots in
    let rec find i =
      let v = slots.(i) in
      if v = k then Some i else if v < 0 then None else find ((i + 1) land mask)
    in
    match find (k land mask) with
    | None -> ()
    | Some hole ->
      t.size <- t.size - 1;
      (* Backward-shift deletion: pull later probe-chain members into the
         hole when their home slot lies cyclically at or before it. *)
      let rec shift hole j =
        let v = slots.(j) in
        if v < 0 then slots.(hole) <- -1
        else begin
          let home = v land mask in
          if (j - home) land mask >= (j - hole) land mask then begin
            slots.(hole) <- v;
            shift j ((j + 1) land mask)
          end
          else shift hole ((j + 1) land mask)
        end
      in
      shift hole ((hole + 1) land mask)
  end

let clear t =
  if t.mask + 1 > min_capacity then begin
    t.slots <- Array.make min_capacity (-1);
    t.mask <- min_capacity - 1
  end
  else Array.fill t.slots 0 (t.mask + 1) (-1);
  t.size <- 0

let iter f t =
  Array.iter (fun k -> if k >= 0 then f k) t.slots

let to_list t =
  Array.fold_left (fun acc k -> if k >= 0 then k :: acc else acc) [] t.slots
  |> List.sort compare
