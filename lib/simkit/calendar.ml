let second = 1.0
let minute = 60.0
let hour = 3600.0
let day = 86400.0
let week = 7.0 *. day
let month = 30.0 *. day

let day_index time = int_of_float (Float.max 0.0 time /. day)
let month_index time = int_of_float (Float.max 0.0 time /. month)

let seconds_into_day time =
  let t = Float.max 0.0 time in
  t -. (float_of_int (day_index t) *. day)

let hour_of_day time = int_of_float (seconds_into_day time /. hour)
let day_of_week time = day_index time mod 7
let is_weekend time = day_of_week time >= 5

let is_peak_hours time =
  (not (is_weekend time))
  &&
  let h = hour_of_day time in
  h >= 8 && h < 19

let peak_end time =
  (float_of_int (day_index time) *. day) +. (19.0 *. hour)

let pp_instant ppf time =
  let t = Float.max 0.0 time in
  let d = day_index t in
  let rest = seconds_into_day t in
  let h = int_of_float (rest /. hour) in
  let m = int_of_float ((rest -. (float_of_int h *. hour)) /. minute) in
  let s = int_of_float (rest -. (float_of_int h *. hour) -. (float_of_int m *. minute)) in
  Format.fprintf ppf "d%03d %02d:%02d:%02d" d h m s

let to_string time = Format.asprintf "%a" pp_instant time
