(** Minimal JSON implementation.

    The Grid'5000 Reference API publishes the testbed description as JSON;
    the paper stresses that a machine-parsable description is what makes
    automated verification possible.  The sealed build environment has no
    yojson, so this module provides the value type, a printer, and a
    recursive-descent parser sufficient for the Reference API documents
    exchanged in this repository. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality; object member order is significant (the Reference
    API emits members in canonical order). *)

val to_string : ?indent:int -> t -> string
(** Serialise; [indent > 0] pretty-prints. *)

val of_string : string -> (t, string) result
(** Parse.  Accepts the JSON subset produced by [to_string] (no unicode
    escapes beyond [\uXXXX] for the BMP, no exponents with '+'... actually
    standard numbers are accepted). *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse errors (like every other [_exn]
    in the repo). *)

(** Accessors, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val string_member : string -> t -> string option
val int_member : string -> t -> int option
val float_member : string -> t -> float option
val bool_member : string -> t -> bool option
val list_member : string -> t -> t list option

val diff : t -> t -> (string * t option * t option) list
(** [diff reference actual] lists JSON-pointer-like paths whose values
    differ, with the value on each side ([None] = absent).  This is the
    comparison primitive used by the g5k-checks reimplementation. *)
