(* The event arena.

   Events live in a binary min-heap laid out as parallel flat arrays
   (time, id, interned label, action) ordered by (time, id); the id
   doubles as the FIFO tie-break since ids are allocated in scheduling
   order.  Nothing is boxed per event on the schedule/step path.

   [run]/[run_until]/[step] drain the queue through a same-instant
   batch buffer: all entries sharing the minimum timestamp are
   extracted in one pass, then consumed slot by slot, so the heap is
   not re-heapified between events of the same instant.  Consumed
   slots are cleared so the arena never retains dead closures.

   Cancellation bookkeeping is two small structures keyed by event id:
   a bitmap of consumed ids (so cancelling an already-fired handle is a
   true no-op) and an {!Intset} of live cancelled ids, pruned when the
   event is skipped — the set can only shrink back to empty, and
   [pending] can never go negative. *)

type t = {
  mutable clock : float;
  (* heap arrays *)
  mutable times : float array;
  mutable ids : int array;
  mutable labels : int array;  (* interned label index, -1 = none *)
  mutable actions : (t -> unit) array;
  mutable size : int;
  (* same-instant batch being consumed *)
  mutable batch_time : float;
  mutable batch_ids : int array;
  mutable batch_labels : int array;
  mutable batch_actions : (t -> unit) array;
  mutable batch_len : int;
  mutable batch_pos : int;
  (* cancellation bookkeeping *)
  cancelled : Intset.t;
  mutable consumed : Bytes.t;  (* bitmap over ids: executed or skipped *)
  master_rng : Prng.t;
  mutable next_id : int;
  mutable executed : int;
  mutable observer : (time:float -> label:string option -> unit) option;
      (* post-event hook used by Audit's race detector; None (the
         default) keeps event execution on the historical path *)
  (* label interning: observer dispatch reuses the cached option *)
  label_index : (string, int) Hashtbl.t;
  mutable label_names : string option array;
  mutable label_count : int;
}

type handle = int

let noop (_ : t) = ()

let create ?(seed = 42L) () =
  {
    clock = 0.0;
    times = [||];
    ids = [||];
    labels = [||];
    actions = [||];
    size = 0;
    batch_time = 0.0;
    batch_ids = [||];
    batch_labels = [||];
    batch_actions = [||];
    batch_len = 0;
    batch_pos = 0;
    cancelled = Intset.create ();
    consumed = Bytes.make 64 '\000';
    master_rng = Prng.create seed;
    next_id = 0;
    executed = 0;
    observer = None;
    label_index = Hashtbl.create 16;
    label_names = [||];
    label_count = 0;
  }

let now t = t.clock
let rng t = t.master_rng
let set_observer t observer = t.observer <- observer

(* Consumed-id bitmap. *)

let consumed_mem t id =
  Char.code (Bytes.get t.consumed (id lsr 3)) land (1 lsl (id land 7)) <> 0

let consumed_add t id =
  let byte = id lsr 3 in
  Bytes.set t.consumed byte
    (Char.chr (Char.code (Bytes.get t.consumed byte) lor (1 lsl (id land 7))))

let ensure_consumed_capacity t id =
  let len = Bytes.length t.consumed in
  if id lsr 3 >= len then begin
    let nlen = max (2 * len) ((id lsr 3) + 1) in
    let nbytes = Bytes.make nlen '\000' in
    Bytes.blit t.consumed 0 nbytes 0 len;
    t.consumed <- nbytes
  end

(* Label interning. *)

let intern t = function
  | None -> -1
  | Some name -> (
    match Hashtbl.find_opt t.label_index name with
    | Some i -> i
    | None ->
      let i = t.label_count in
      let cap = Array.length t.label_names in
      if i = cap then begin
        let ncap = if cap = 0 then 8 else 2 * cap in
        let names = Array.make ncap None in
        Array.blit t.label_names 0 names 0 cap;
        t.label_names <- names
      end;
      t.label_names.(i) <- Some name;
      t.label_count <- i + 1;
      Hashtbl.add t.label_index name i;
      i)

let label_option t idx = if idx < 0 then None else t.label_names.(idx)

(* Heap primitives over the parallel arrays; order is (time, id). *)

let heap_grow t =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else 2 * cap in
    let times = Array.make ncap 0.0 in
    let ids = Array.make ncap 0 in
    let labels = Array.make ncap (-1) in
    let actions = Array.make ncap noop in
    Array.blit t.times 0 times 0 cap;
    Array.blit t.ids 0 ids 0 cap;
    Array.blit t.labels 0 labels 0 cap;
    Array.blit t.actions 0 actions 0 cap;
    t.times <- times;
    t.ids <- ids;
    t.labels <- labels;
    t.actions <- actions
  end

let heap_push t time id label action =
  heap_grow t;
  (* Sift up with a hole: move later-ordered parents down, store once. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = t.times.(parent) in
    if time < pt || (time = pt && id < t.ids.(parent)) then begin
      t.times.(!i) <- pt;
      t.ids.(!i) <- t.ids.(parent);
      t.labels.(!i) <- t.labels.(parent);
      t.actions.(!i) <- t.actions.(parent);
      i := parent
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.ids.(!i) <- id;
  t.labels.(!i) <- label;
  t.actions.(!i) <- action

(* Remove the root; the caller has already copied it out. *)
let heap_remove_min t =
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then begin
    let time = t.times.(last) in
    let id = t.ids.(last) in
    let label = t.labels.(last) in
    let action = t.actions.(last) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= last then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < last then begin
            let lt = t.times.(l) and rt = t.times.(r) in
            if rt < lt || (rt = lt && t.ids.(r) < t.ids.(l)) then r else l
          end
          else l
        in
        let ct = t.times.(c) in
        if ct < time || (ct = time && t.ids.(c) < id) then begin
          t.times.(!i) <- ct;
          t.ids.(!i) <- t.ids.(c);
          t.labels.(!i) <- t.labels.(c);
          t.actions.(!i) <- t.actions.(c);
          i := c
        end
        else continue := false
      end
    done;
    t.times.(!i) <- time;
    t.ids.(!i) <- id;
    t.labels.(!i) <- label;
    t.actions.(!i) <- action
  end;
  t.actions.(last) <- noop

(* Scheduling. *)

let schedule_at t ?label ~time action =
  let id = t.next_id in
  t.next_id <- id + 1;
  ensure_consumed_capacity t id;
  let time = Float.max time t.clock in
  heap_push t time id (intern t label) action;
  id

let schedule t ?label ~delay action =
  schedule_at t ?label ~time:(t.clock +. Float.max 0.0 delay) action

let cancel t handle =
  (* An already-consumed (fired or skipped) handle is a true no-op: it
     must not be remembered, or the cancelled set would grow without
     bound and [pending] could go negative. *)
  if handle >= 0 && handle < t.next_id && not (consumed_mem t handle) then
    Intset.add t.cancelled handle

let cancelled t handle = Intset.mem t.cancelled handle

let every t ?label ~period ?(jitter = 0.0) f =
  (* Jittered timers draw from a dedicated stream split off once at
     registration, so their draws never perturb the master sequence
     consumed by the rest of the simulation. *)
  let jrng = if jitter > 0.0 then Some (Prng.split t.master_rng) else None in
  let rec tick engine =
    if f engine then begin
      let j = match jrng with None -> 0.0 | Some r -> Prng.float r *. jitter in
      ignore (schedule engine ?label ~delay:(period +. j) tick)
    end
  in
  tick t

(* Draining. *)

let batch_grow t =
  let cap = Array.length t.batch_ids in
  if t.batch_len = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ids = Array.make ncap 0 in
    let labels = Array.make ncap (-1) in
    let actions = Array.make ncap noop in
    Array.blit t.batch_ids 0 ids 0 cap;
    Array.blit t.batch_labels 0 labels 0 cap;
    Array.blit t.batch_actions 0 actions 0 cap;
    t.batch_ids <- ids;
    t.batch_labels <- labels;
    t.batch_actions <- actions
  end

(* Extract every heap entry sharing the minimum timestamp into the
   batch buffer, in (time, id) order, without re-heapifying between
   consumed events.  Requires a non-empty heap and an exhausted batch. *)
let refill_batch t =
  let time = t.times.(0) in
  t.batch_time <- time;
  t.batch_len <- 0;
  t.batch_pos <- 0;
  while t.size > 0 && t.times.(0) = time do
    batch_grow t;
    let i = t.batch_len in
    t.batch_ids.(i) <- t.ids.(0);
    t.batch_labels.(i) <- t.labels.(0);
    t.batch_actions.(i) <- t.actions.(0);
    t.batch_len <- i + 1;
    heap_remove_min t
  done

(* Consume one event: skip it if cancelled (no clock advance, as
   before), otherwise execute it. *)
let consume t ~time ~id ~label action =
  consumed_add t id;
  if (not (Intset.is_empty t.cancelled)) && Intset.mem t.cancelled id then
    Intset.remove t.cancelled id
  else begin
    t.clock <- Float.max t.clock time;
    t.executed <- t.executed + 1;
    action t;
    match t.observer with
    | None -> ()
    | Some f -> f ~time:t.clock ~label:(label_option t label)
  end

(* Slots are cleared as they go so the buffer never outlives its
   closures. *)
let consume_slot t =
  let i = t.batch_pos in
  t.batch_pos <- i + 1;
  let id = t.batch_ids.(i) in
  let action = t.batch_actions.(i) in
  let label = t.batch_labels.(i) in
  t.batch_actions.(i) <- noop;
  consume t ~time:t.batch_time ~id ~label action

(* A skipped cancelled slot leaves the clock behind the batch time, so
   an external driver can then schedule ahead of the in-flight batch;
   such an event must fire before the rest of the batch to keep global
   (time, id) order, and it is served straight from the heap. *)
let root_before_batch t =
  t.batch_pos < t.batch_len && t.size > 0 && t.times.(0) < t.batch_time

let consume_root t =
  let time = t.times.(0) in
  let id = t.ids.(0) in
  let label = t.labels.(0) in
  let action = t.actions.(0) in
  heap_remove_min t;
  consume t ~time ~id ~label action

let step t =
  if root_before_batch t then begin
    consume_root t;
    true
  end
  else if t.batch_pos < t.batch_len then begin
    consume_slot t;
    true
  end
  else if t.size = 0 then false
  else begin
    refill_batch t;
    consume_slot t;
    true
  end

let run_until t horizon =
  let continue = ref true in
  while !continue do
    if root_before_batch t then
      if t.times.(0) <= horizon then consume_root t else continue := false
    else if t.batch_pos < t.batch_len then
      if t.batch_time <= horizon then consume_slot t else continue := false
    else if t.size > 0 && t.times.(0) <= horizon then refill_batch t
    else continue := false
  done;
  t.clock <- Float.max t.clock horizon

let run t = while step t do () done

let next_time t =
  let batch = if t.batch_pos < t.batch_len then Some t.batch_time else None in
  let root = if t.size > 0 then Some t.times.(0) else None in
  match (batch, root) with
  | None, None -> None
  | (Some _ as only), None | None, (Some _ as only) -> only
  | Some b, Some r -> Some (Float.min b r)

let pending t =
  (* Scheduled-but-unconsumed events live either in the heap or in the
     unconsumed tail of the batch; cancelled ids are a subset of them. *)
  t.size + (t.batch_len - t.batch_pos) - Intset.cardinal t.cancelled

let events_executed t = t.executed
