type event = { id : int; label : string option; action : t -> unit }

and t = {
  mutable clock : float;
  queue : event Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  master_rng : Prng.t;
  mutable next_id : int;
  mutable executed : int;
  mutable observer : (time:float -> label:string option -> unit) option;
      (* post-event hook used by Audit's race detector; None (the
         default) keeps event execution on the historical path *)
}

type handle = int

let create ?(seed = 42L) () =
  {
    clock = 0.0;
    queue = Heap.create ();
    cancelled = Hashtbl.create 64;
    master_rng = Prng.create seed;
    next_id = 0;
    executed = 0;
    observer = None;
  }

let now t = t.clock
let rng t = t.master_rng
let set_observer t observer = t.observer <- observer

let schedule_at t ?label ~time action =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let time = Float.max time t.clock in
  Heap.push t.queue ~key:time { id; label; action };
  id

let schedule t ?label ~delay action =
  schedule_at t ?label ~time:(t.clock +. Float.max 0.0 delay) action

let cancel t handle =
  if handle >= 0 && handle < t.next_id then Hashtbl.replace t.cancelled handle ()

let cancelled t handle = Hashtbl.mem t.cancelled handle

let rec every t ?label ~period ?(jitter = 0.0) f =
  let reschedule engine =
    if f engine then begin
      let j = if jitter > 0.0 then Prng.float engine.master_rng *. jitter else 0.0 in
      ignore
        (schedule engine ?label ~delay:(period +. j) (fun e ->
             every_tick e ?label ~period ~jitter f))
    end
  in
  reschedule t

and every_tick t ?label ~period ~jitter f = every t ?label ~period ~jitter f

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, ev) ->
    if Hashtbl.mem t.cancelled ev.id then begin
      Hashtbl.remove t.cancelled ev.id;
      (* Skip silently; the clock does not advance for cancelled events
         that would not have been reached yet, but advancing is harmless
         and keeps [step] O(1): we only advance when executing. *)
      true
    end
    else begin
      t.clock <- Float.max t.clock time;
      t.executed <- t.executed + 1;
      ev.action t;
      (match t.observer with
       | None -> ()
       | Some f -> f ~time:t.clock ~label:ev.label);
      true
    end

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | Some (time, _) when time <= horizon -> ignore (step t)
    | _ -> continue := false
  done;
  t.clock <- Float.max t.clock horizon

let run t = while step t do () done

let pending t =
  (* Cancelled events still sit in the heap until popped. *)
  Heap.length t.queue - Hashtbl.length t.cancelled

let events_executed t = t.executed
