(** Imperative set of non-negative ints.

    Open addressing with identity hashing and backward-shift deletion,
    tuned for dense keys such as the engine's event handles; membership,
    insertion and removal are O(1) expected with no per-element
    allocation. *)

type t

val create : unit -> t
val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val add : t -> int -> unit
(** @raise Invalid_argument on negative keys. *)

val remove : t -> int -> unit
(** Removing an absent (or negative) key is a no-op. *)

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** Unspecified order. *)

val to_list : t -> int list
(** Ascending order. *)
