(** Registry of {!Prng.derive} tag families.

    [Prng.derive seed tag] yields a stateless stream per [tag], but two
    call sites deriving at the same tag silently share (alias) a stream —
    a determinism hazard the federation differential harness can only
    catch after the fact.  Every derivation family in the codebase claims
    a named half-open tag range [[base, base + count)] here, and Semlint's
    L020 pass statically proves the ranges disjoint for the configured
    fleet size.

    Current layout (master campaign seed):
    - [0x1E]       federation interleave shuffle
    - [0xC0]       federation coordinator
    - [0x10000+i]  federation link stream of member [i]
    - [0x20000+i]  fleet member-synthesis stream of member [i]

    Fleet members historically derived at bare index [i], which collides
    with the interleave tag from 31 testbeds and the coordinator tag from
    193 — below the 50-testbed scale ROADMAP targets.  The registry made
    that overlap provable; members now start at {!fleet_member_base}. *)

type range = { name : string; base : int; count : int }
(** Half-open tag interval [[base, base + count)].  [count <= 0] ranges
    are inert (claim nothing). *)

val coordinator_tag : int
val interleave_tag : int
val federation_link_base : int
val fleet_member_base : int

val fleet_member_tag : int -> int
(** Derivation tag of fleet member [i] ([fleet_member_base + i]).
    @raise Invalid_argument on negative [i]. *)

val federation_link_tag : int -> int
(** Derivation tag of federation link [i] ([federation_link_base + i]).
    @raise Invalid_argument on negative [i]. *)

val coordinator : range

val interleave : range

val federation_links : count:int -> range

val fleet_members : count:int -> range

val registry : members:int -> range list
(** All stream families a federation of [members] testbeds derives from
    the master seed. *)

val range_to_string : range -> string

val overlaps : range list -> (range * range) list
(** All pairs of ranges with a non-empty tag intersection, ordered by
    base.  Empty result = the layout is proved collision-free. *)
