type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)
let copy t = { state = t.state }

let derive seed index =
  if index < 0 then invalid_arg "Prng.derive: negative index";
  (* One SplitMix64 step over (seed + (index+1) * gamma): stateless, so
     shard i's stream is a pure function of (master seed, i) and never
     depends on how many sibling streams were derived before it. *)
  next_int64 (create (Int64.add seed (Int64.mul (Int64.of_int (index + 1)) golden_gamma)))

let float t =
  (* Top 53 bits give a uniform dyadic rational in [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the low bits to avoid modulo bias. *)
  let mask =
    let rec widen m = if m >= bound - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (next_int64 t) 0x7FFFFFFFFFFFFFFFL) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  let copy = Array.copy arr in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k
