(** Deterministic pseudo-random number generation.

    SplitMix64: fast, high-quality, and splittable, so every subsystem of
    the simulation can own an independent stream derived from one master
    seed.  All randomness in the repository flows through this module. *)

type t
(** A mutable PRNG stream. *)

val create : int64 -> t
(** [create seed] returns a fresh stream seeded with [seed]. *)

val split : t -> t
(** [split t] derives an independent stream from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state (both copies then evolve
    independently but identically if used identically). *)

val derive : int64 -> int -> int64
(** [derive seed index] is a stateless per-index stream seed: a pure
    function of [(seed, index)], unlike {!split}, whose result depends
    on how often the parent was consumed before.  Shard/testbed [i] of a
    federation seeds its private stream with [derive master i], so the
    stream layout is invariant under shard count and service order.
    @raise Invalid_argument on a negative index. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)], 53 bits of precision. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument if
    the array is empty. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] returns [k] distinct elements
    chosen uniformly.  @raise Invalid_argument if [k] exceeds the array
    length. *)
