type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | _ -> false

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = 0) t =
  let buf = Buffer.create 256 in
  let pad level = if indent > 0 then Buffer.add_string buf (String.make (level * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  let rec emit level t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          emit (level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          if indent > 0 then Buffer.add_char buf ' ';
          emit (level + 1) v)
        members;
      nl ();
      pad level;
      Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

exception Parse_error of string

let of_string_exn_internal s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        if !pos >= len then fail "dangling escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > len then fail "short unicode escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code = int_of_string ("0x" ^ hex) in
           (* BMP code points encoded as UTF-8. *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let of_string s =
  match of_string_exn_internal s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> invalid_arg ("Json.of_string_exn: " ^ msg)

let member key t =
  match t with Obj members -> List.assoc_opt key members | _ -> None

let string_member key t =
  match member key t with Some (String s) -> Some s | _ -> None

let int_member key t = match member key t with Some (Int i) -> Some i | _ -> None

let float_member key t =
  match member key t with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let bool_member key t = match member key t with Some (Bool b) -> Some b | _ -> None
let list_member key t = match member key t with Some (List l) -> Some l | _ -> None

let diff reference actual =
  let out = ref [] in
  let record path a b = out := (path, a, b) :: !out in
  let rec go path a b =
    match (a, b) with
    | Obj ma, Obj mb ->
      let keys =
        List.sort_uniq String.compare (List.map fst ma @ List.map fst mb)
      in
      List.iter
        (fun k ->
          let sub = if path = "" then k else path ^ "/" ^ k in
          match (List.assoc_opt k ma, List.assoc_opt k mb) with
          | Some va, Some vb -> go sub va vb
          | Some va, None -> record sub (Some va) None
          | None, Some vb -> record sub None (Some vb)
          | None, None -> ())
        keys
    | List la, List lb when List.length la = List.length lb ->
      List.iteri (fun i (va, vb) -> go (Printf.sprintf "%s/%d" path i) va vb)
        (List.combine la lb)
    | a, b -> if not (equal a b) then record path (Some a) (Some b)
  in
  go "" reference actual;
  List.rev !out
