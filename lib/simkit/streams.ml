(* Registry of every Prng.derive tag family in the codebase.

   [Prng.derive seed tag] gives a stateless per-tag stream, but nothing
   stops two call sites from deriving at the same tag — the streams then
   alias, and consumers that believe they hold independent randomness are
   in fact correlated (or, worse for the federation drivers, order-
   dependent).  Each derivation site therefore registers its tag range
   here, and Semlint's L020 pass proves the ranges disjoint for the
   fleet/federation sizes actually configured. *)

type range = { name : string; base : int; count : int }

let coordinator_tag = 0xC0
let interleave_tag = 0x1E
let federation_link_base = 0x10000
let fleet_member_base = 0x20000

let fleet_member_tag i =
  if i < 0 then invalid_arg "Streams.fleet_member_tag: negative index";
  fleet_member_base + i

let federation_link_tag i =
  if i < 0 then invalid_arg "Streams.federation_link_tag: negative index";
  federation_link_base + i

let coordinator = { name = "federation.coordinator"; base = coordinator_tag; count = 1 }
let interleave = { name = "federation.interleave"; base = interleave_tag; count = 1 }

let federation_links ~count =
  { name = "federation.link"; base = federation_link_base; count }

let fleet_members ~count =
  { name = "fleet.member"; base = fleet_member_base; count }

let registry ~members =
  [ coordinator; interleave; federation_links ~count:members;
    fleet_members ~count:members ]

let range_to_string r =
  if r.count = 1 then Printf.sprintf "%s [0x%X]" r.name r.base
  else Printf.sprintf "%s [0x%X..0x%X]" r.name r.base (r.base + r.count - 1)

let overlaps ranges =
  let live = List.filter (fun r -> r.count > 0) ranges in
  let sorted =
    List.stable_sort (fun a b -> compare (a.base, a.name) (b.base, b.name)) live
  in
  let pair a b =
    (* intersection of [base, base+count) intervals *)
    let lo = max a.base b.base and hi = min (a.base + a.count) (b.base + b.count) in
    if lo < hi then Some (a, b) else None
  in
  let rec all acc = function
    | [] -> List.rev acc
    | a :: tl ->
      let acc =
        List.fold_left
          (fun acc b -> match pair a b with Some p -> p :: acc | None -> acc)
          acc tl
      in
      all acc tl
  in
  all [] sorted
