type t = {
  series_name : string;
  mutable times : float array;
  mutable values : float array;
  mutable size : int;
  cadence : float option;
  max_points : int option;
  mutable dropped : int;
}

let create ?(capacity = 64) ?cadence ?max_points ~name () =
  (match cadence with
   | Some c when c <= 0.0 -> invalid_arg "Timeseries.create: cadence must be positive"
   | _ -> ());
  (match max_points with
   | Some n when n < 2 -> invalid_arg "Timeseries.create: max_points must be at least 2"
   | _ -> ());
  let capacity =
    match max_points with
    | Some n -> Stdlib.min (Stdlib.max 1 capacity) n
    | None -> Stdlib.max 1 capacity
  in
  {
    series_name = name;
    times = Array.make capacity 0.0;
    values = Array.make capacity 0.0;
    size = 0;
    cadence;
    max_points;
    dropped = 0;
  }

let name t = t.series_name
let length t = t.size
let dropped t = t.dropped

(* Bounded series discard their oldest quarter in one block move; the
   amortized cost per append stays O(1) and the newest samples survive. *)
let trim_oldest t =
  let shed = Stdlib.max 1 (t.size / 4) in
  let kept = t.size - shed in
  Array.blit t.times shed t.times 0 kept;
  Array.blit t.values shed t.values 0 kept;
  t.size <- kept;
  t.dropped <- t.dropped + shed

let add t ~time v =
  if t.size > 0 && time < t.times.(t.size - 1) then
    invalid_arg "Timeseries.add: time going backwards";
  (match t.max_points with
   | Some cap when t.size >= cap -> trim_oldest t
   | _ -> ());
  if t.size = Array.length t.times then begin
    let ncap = 2 * Array.length t.times in
    let ncap = match t.max_points with Some cap -> Stdlib.min ncap cap | None -> ncap in
    let ntimes = Array.make ncap 0.0 and nvalues = Array.make ncap 0.0 in
    Array.blit t.times 0 ntimes 0 t.size;
    Array.blit t.values 0 nvalues 0 t.size;
    t.times <- ntimes;
    t.values <- nvalues
  end;
  t.times.(t.size) <- time;
  t.values.(t.size) <- v;
  t.size <- t.size + 1

let add_binned t ~time v =
  match t.cadence with
  | None -> add t ~time v
  | Some cadence ->
    let bucket = Float.floor (time /. cadence) *. cadence in
    if t.size > 0 && t.times.(t.size - 1) = bucket then
      t.values.(t.size - 1) <- t.values.(t.size - 1) +. v
    else add t ~time:bucket v

let last t = if t.size = 0 then None else Some (t.times.(t.size - 1), t.values.(t.size - 1))

let nth t i =
  if i < 0 || i >= t.size then invalid_arg "Timeseries.nth";
  (t.times.(i), t.values.(i))

(* First index with time >= lo, by binary search. *)
let lower_bound t lo =
  let rec go a b =
    if a >= b then a
    else
      let mid = (a + b) / 2 in
      if t.times.(mid) < lo then go (mid + 1) b else go a mid
  in
  go 0 t.size

let between t ~lo ~hi =
  let start = lower_bound t lo in
  let rec collect i acc =
    if i >= t.size || t.times.(i) > hi then List.rev acc
    else collect (i + 1) ((t.times.(i), t.values.(i)) :: acc)
  in
  collect start []

let values_between t ~lo ~hi =
  let pairs = between t ~lo ~hi in
  Array.of_list (List.map snd pairs)

let mean_between t ~lo ~hi =
  let vs = values_between t ~lo ~hi in
  if Array.length vs = 0 then nan
  else Array.fold_left ( +. ) 0.0 vs /. float_of_int (Array.length vs)

let downsample t ~bucket =
  if bucket <= 0.0 then invalid_arg "Timeseries.downsample: bucket must be positive";
  let out = ref [] in
  let current_start = ref nan in
  let acc = ref 0.0 in
  let n = ref 0 in
  let flush () =
    if !n > 0 then out := (!current_start, !acc /. float_of_int !n) :: !out
  in
  for i = 0 to t.size - 1 do
    (* floor, not truncate-toward-zero: negative times must not share the
       [0, bucket) bucket with positive ones *)
    let start = Float.floor (t.times.(i) /. bucket) *. bucket in
    if Float.is_nan !current_start || start <> !current_start then begin
      flush ();
      current_start := start;
      acc := 0.0;
      n := 0
    end;
    acc := !acc +. t.values.(i);
    incr n
  done;
  flush ();
  List.rev !out

let iter t f =
  for i = 0 to t.size - 1 do
    f t.times.(i) t.values.(i)
  done

let sparkline t ~lo ~hi ~width =
  let vs = values_between t ~lo ~hi in
  if Array.length vs = 0 then String.make width ' '
  else begin
    let vmin = Array.fold_left Float.min infinity vs in
    let vmax = Array.fold_left Float.max neg_infinity vs in
    let glyphs = [| '_'; '.'; '-'; '='; '*'; '#' |] in
    let pick v =
      if vmax <= vmin then glyphs.(0)
      else begin
        let idx =
          int_of_float ((v -. vmin) /. (vmax -. vmin) *. float_of_int (Array.length glyphs - 1))
        in
        glyphs.(Stdlib.min (Array.length glyphs - 1) (Stdlib.max 0 idx))
      end
    in
    let buf = Buffer.create width in
    for i = 0 to width - 1 do
      let src = i * Array.length vs / width in
      Buffer.add_char buf (pick vs.(src))
    done;
    Buffer.contents buf
  end
