(* Parallel-array binary min-heap.  Keys and insertion sequence numbers
   live in flat unboxed arrays so comparisons never chase entry records,
   and values sit in their own array whose vacated slots are cleared on
   [pop] — a popped element must not stay reachable from the heap (it
   used to pin event closures and their captured state until the slot
   happened to be overwritten). *)

type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable values : 'a option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { keys = [||]; seqs = [||]; values = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.keys in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nkeys = Array.make ncap 0.0 in
    let nseqs = Array.make ncap 0 in
    let nvalues = Array.make ncap None in
    Array.blit t.keys 0 nkeys 0 t.size;
    Array.blit t.seqs 0 nseqs 0 t.size;
    Array.blit t.values 0 nvalues 0 t.size;
    t.keys <- nkeys;
    t.seqs <- nseqs;
    t.values <- nvalues
  end

let push t ~key value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  grow t;
  (* Sift up with a hole: move larger parents down, store once. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pk = t.keys.(parent) in
    if key < pk || (key = pk && seq < t.seqs.(parent)) then begin
      t.keys.(!i) <- pk;
      t.seqs.(!i) <- t.seqs.(parent);
      t.values.(!i) <- t.values.(parent);
      i := parent
    end
    else continue := false
  done;
  t.keys.(!i) <- key;
  t.seqs.(!i) <- seq;
  t.values.(!i) <- Some value

let peek t =
  if t.size = 0 then None
  else
    match t.values.(0) with
    | Some v -> Some (t.keys.(0), v)
    | None -> assert false

let pop t =
  if t.size = 0 then None
  else begin
    let top_key = t.keys.(0) in
    let top_value = t.values.(0) in
    let last = t.size - 1 in
    t.size <- last;
    if last > 0 then begin
      (* Sift the detached last element down from the root hole. *)
      let key = t.keys.(last) in
      let seq = t.seqs.(last) in
      let value = t.values.(last) in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        if l >= last then continue := false
        else begin
          let r = l + 1 in
          let c =
            if r < last then begin
              let lk = t.keys.(l) and rk = t.keys.(r) in
              if rk < lk || (rk = lk && t.seqs.(r) < t.seqs.(l)) then r else l
            end
            else l
          in
          let ck = t.keys.(c) in
          if ck < key || (ck = key && t.seqs.(c) < seq) then begin
            t.keys.(!i) <- ck;
            t.seqs.(!i) <- t.seqs.(c);
            t.values.(!i) <- t.values.(c);
            i := c
          end
          else continue := false
        end
      done;
      t.keys.(!i) <- key;
      t.seqs.(!i) <- seq;
      t.values.(!i) <- value
    end;
    (* Clear the vacated slot so the heap does not retain the popped
       (or moved) element beyond its lifetime. *)
    t.values.(last) <- None;
    match top_value with
    | Some v -> Some (top_key, v)
    | None -> assert false
  end

let clear t =
  t.keys <- [||];
  t.seqs <- [||];
  t.values <- [||];
  t.size <- 0

let to_list t =
  let idx = Array.init t.size (fun i -> i) in
  Array.sort
    (fun a b ->
      let ka = t.keys.(a) and kb = t.keys.(b) in
      if ka < kb then -1
      else if ka > kb then 1
      else compare t.seqs.(a) t.seqs.(b))
    idx;
  Array.to_list
    (Array.map
       (fun i ->
         match t.values.(i) with
         | Some v -> (t.keys.(i), v)
         | None -> assert false)
       idx)
