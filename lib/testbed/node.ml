type state = Alive | Rebooting | Deploying | Down

type health =
  | Healthy
  | Suspected
  | Quarantined
  | Repairing
  | Reverifying
  | Retired

type behaviour = {
  mutable random_reboot_mtbf : float option;
  mutable boot_race : bool;
  mutable ofed_flaky : bool;
  mutable console_broken : bool;
}

type t = {
  name : string;
  host : string;
  site_name : string;
  cluster_name : string;
  index : int;
  reference : Hardware.t;
  mutable actual : Hardware.t;
  mutable state : state;
  mutable health : health;
  mutable deployed_env : string;
  mutable vlan : int;
  behaviour : behaviour;
  rng : Simkit.Prng.t;
  mutable boot_count : int;
  mutable unexpected_reboots : int;
}

let make ~rng ~site ~cluster ~index hw =
  let name = Printf.sprintf "%s-%d" cluster index in
  {
    name;
    host = Printf.sprintf "%s.%s" name site;
    site_name = site;
    cluster_name = cluster;
    index;
    reference = hw;
    actual = hw;
    state = Alive;
    health = Healthy;
    deployed_env = "std";
    vlan = 0;
    behaviour =
      { random_reboot_mtbf = None; boot_race = false; ofed_flaky = false;
        console_broken = false };
    rng;
    boot_count = 0;
    unexpected_reboots = 0;
  }

let state_to_string = function
  | Alive -> "alive"
  | Rebooting -> "rebooting"
  | Deploying -> "deploying"
  | Down -> "down"

let health_to_string = function
  | Healthy -> "healthy"
  | Suspected -> "suspected"
  | Quarantined -> "quarantined"
  | Repairing -> "repairing"
  | Reverifying -> "reverifying"
  | Retired -> "retired"

let is_available t = t.state = Alive
let in_service t = t.health = Healthy

let boot_duration t =
  let base = Float.max 30.0 (Simkit.Dist.normal t.rng ~mu:120.0 ~sigma:15.0) in
  if t.behaviour.boot_race && Simkit.Prng.chance t.rng 0.30 then
    base +. Simkit.Dist.exponential t.rng ~mean:300.0
  else base

let boot_fails t =
  let p = if t.behaviour.random_reboot_mtbf <> None then 0.05 else 0.004 in
  Simkit.Prng.chance t.rng p

let cpu_benchmark t =
  let hw = t.actual in
  let nominal = 1000.0 *. (hw.Hardware.cpu.Hardware.base_freq_ghz /. 2.0) in
  let factor = Hardware.cpu_perf_factor hw.Hardware.settings in
  let noise = Simkit.Dist.normal t.rng ~mu:1.0 ~sigma:0.01 in
  nominal *. factor *. noise

let disk_benchmark t =
  match t.actual.Hardware.disks with
  | [] -> invalid_arg "Node.disk_benchmark: node has no disk"
  | disk :: _ ->
    let noise = Simkit.Dist.normal t.rng ~mu:1.0 ~sigma:0.02 in
    Hardware.disk_bandwidth disk *. noise

let ib_start_ok t =
  match t.actual.Hardware.ib with
  | None -> true
  | Some _ -> if t.behaviour.ofed_flaky then not (Simkit.Prng.chance t.rng 0.35) else true

let reset_to_reference t =
  t.actual <- t.reference;
  t.behaviour.random_reboot_mtbf <- None;
  t.behaviour.boot_race <- false;
  t.behaviour.ofed_flaky <- false;
  t.behaviour.console_broken <- false;
  if t.state = Down then t.state <- Alive

let pp ppf t =
  Format.fprintf ppf "%s [%s] env=%s vlan=%d %a" t.host (state_to_string t.state)
    t.deployed_env t.vlan Hardware.pp t.actual
