type kind =
  | Cpu_cstates
  | Cpu_hyperthreading
  | Cpu_turbo
  | Cpu_governor
  | Bios_drift
  | Disk_firmware
  | Disk_write_cache
  | Ram_dimm_loss
  | Cabling_swap
  | Kwapi_misattribution
  | Random_reboots
  | Kernel_boot_race
  | Ofed_flaky
  | Console_broken
  | Service_outage
  | Refapi_desync
  | Oar_property_desync
  | Env_image_corrupt
  | Ci_outage
  | Build_hang
  | Queue_loss
  | Serve_crash
  | Site_outage
  | Pdu_failure
  | Network_partition

type target =
  | Host of string
  | Host_pair of string * string
  | Cluster of string
  | Rack of string * int
  | Site of string
  | Site_service of string * Services.kind
  | Global of string

type fault = {
  id : int;
  kind : kind;
  target : target;
  injected_at : float;
  what : string;
  mutable detected_at : float option;
  mutable repaired_at : float option;
}

type ctx = {
  nodes : Node.t array;
  by_host : (string, Node.t) Hashtbl.t;
  network : Network.t;
  services : Services.t;
  refapi : Refapi.t;
  flags : (string, string) Hashtbl.t;
}

type t = {
  ctx : ctx;
  rng : Simkit.Prng.t;
  mutable faults : fault list;  (* newest first *)
  mutable next_id : int;
}

let all_kinds =
  [ Cpu_cstates; Cpu_hyperthreading; Cpu_turbo; Cpu_governor; Bios_drift;
    Disk_firmware; Disk_write_cache; Ram_dimm_loss; Cabling_swap;
    Kwapi_misattribution; Random_reboots; Kernel_boot_race; Ofed_flaky;
    Console_broken; Service_outage; Refapi_desync; Oar_property_desync;
    Env_image_corrupt; Ci_outage; Build_hang; Queue_loss; Serve_crash;
    Site_outage; Pdu_failure; Network_partition ]

(* Correlated faults take out many nodes at once; a PDU powers a fixed
   slice of a cluster's racks. *)
let rack_size = 8
let rack_of_index index = (index - 1) / rack_size
let partition_flag site = "partition:" ^ site

(* Infrastructure faults degrade the testing framework itself; their
   effects are carried as flags consulted by the CI/resilience layer. *)
let ci_outage_flag = "ci_outage"
let build_hang_flag = "build_hang"
let queue_loss_flag = "queue_loss"
let serve_crash_flag = "serve_crash"

let infra_flag = function
  | Ci_outage -> Some ci_outage_flag
  | Build_hang -> Some build_hang_flag
  | Queue_loss -> Some queue_loss_flag
  | Serve_crash -> Some serve_crash_flag
  | _ -> None

let kind_to_string = function
  | Cpu_cstates -> "cpu-cstates"
  | Cpu_hyperthreading -> "cpu-hyperthreading"
  | Cpu_turbo -> "cpu-turbo"
  | Cpu_governor -> "cpu-governor"
  | Bios_drift -> "bios-drift"
  | Disk_firmware -> "disk-firmware"
  | Disk_write_cache -> "disk-write-cache"
  | Ram_dimm_loss -> "ram-dimm-loss"
  | Cabling_swap -> "cabling-swap"
  | Kwapi_misattribution -> "kwapi-misattribution"
  | Random_reboots -> "random-reboots"
  | Kernel_boot_race -> "kernel-boot-race"
  | Ofed_flaky -> "ofed-flaky"
  | Console_broken -> "console-broken"
  | Service_outage -> "service-outage"
  | Refapi_desync -> "refapi-desync"
  | Oar_property_desync -> "oar-property-desync"
  | Env_image_corrupt -> "env-image-corrupt"
  | Ci_outage -> "ci-outage"
  | Build_hang -> "build-hang"
  | Queue_loss -> "queue-loss"
  | Serve_crash -> "serve-crash"
  | Site_outage -> "site-outage"
  | Pdu_failure -> "pdu-failure"
  | Network_partition -> "network-partition"

let category = function
  | Cpu_cstates | Cpu_hyperthreading | Cpu_turbo | Cpu_governor | Bios_drift ->
    "cpu-settings"
  | Disk_firmware | Disk_write_cache -> "disk"
  | Cabling_swap | Kwapi_misattribution -> "cabling"
  | Ram_dimm_loss | Random_reboots -> "infrastructure"
  | Refapi_desync | Oar_property_desync -> "description"
  | Console_broken | Service_outage -> "services"
  | Kernel_boot_race | Ofed_flaky | Env_image_corrupt -> "software"
  | Ci_outage | Build_hang | Queue_loss | Serve_crash -> "ci"
  | Site_outage | Pdu_failure | Network_partition -> "correlated"

let create ~rng ctx = { ctx; rng; faults = []; next_id = 0 }
let context t = t.ctx

let flag ctx key = Hashtbl.find_opt ctx.flags key

(* ---- target selection ------------------------------------------------- *)

let node_weight node =
  match Inventory.find_cluster node.Node.cluster_name with
  | Some spec -> Inventory.age_factor spec
  | None -> 1.0

let weighted_node t ~filter =
  let candidates =
    Array.to_list t.ctx.nodes
    |> List.filter (fun n -> filter n && n.Node.state <> Node.Down)
  in
  match candidates with
  | [] -> None
  | candidates ->
    let total = List.fold_left (fun acc n -> acc +. node_weight n) 0.0 candidates in
    let target = Simkit.Prng.float t.rng *. total in
    let rec pick acc = function
      | [] -> None
      | [ n ] -> Some n
      | n :: rest ->
        let acc = acc +. node_weight n in
        if acc >= target then Some n else pick acc rest
    in
    pick 0.0 candidates

let random_cluster t ~filter =
  let candidates = List.filter filter Inventory.clusters in
  match candidates with
  | [] -> None
  | _ -> Some (Simkit.Prng.choose_list t.rng candidates)

(* ---- effects ----------------------------------------------------------- *)

let update_settings node f =
  let hw = node.Node.actual in
  node.Node.actual <- { hw with Hardware.settings = f hw.Hardware.settings }

let update_first_disk node f =
  let hw = node.Node.actual in
  match hw.Hardware.disks with
  | [] -> ()
  | d :: rest -> node.Node.actual <- { hw with Hardware.disks = f d :: rest }

let cluster_nodes ctx cluster =
  Array.to_list ctx.nodes
  |> List.filter (fun n -> String.equal n.Node.cluster_name cluster)

let site_nodes ctx site =
  Array.to_list ctx.nodes
  |> List.filter (fun n -> String.equal n.Node.site_name site)

let rack_nodes ctx cluster rack =
  cluster_nodes ctx cluster
  |> List.filter (fun n -> rack_of_index n.Node.index = rack)

(* Correlated faults must not stack on the same target: a second outage
   of an already-dark site would make the first revert lie. *)
let target_already_hit t target =
  List.exists
    (fun f -> f.repaired_at = None && f.target = target)
    t.faults

let down_nodes nodes =
  List.iter (fun n -> if n.Node.state <> Node.Down then n.Node.state <- Node.Down)
    nodes

let revive_nodes nodes =
  List.iter (fun n -> if n.Node.state = Node.Down then n.Node.state <- Node.Alive)
    nodes

let down_site_services ctx site =
  List.iter
    (fun service -> Services.set_state ctx.services ~site service Services.Down)
    Services.all_kinds

let repair_site_services ctx site =
  List.iter (fun service -> Services.repair ctx.services ~site service)
    Services.all_kinds

(* Shared by inject and inject_on once the target is validated. *)
let correlated_effect t kind target =
  match (kind, target) with
  | Site_outage, Site site ->
    let nodes = site_nodes t.ctx site in
    if nodes = [] then None
    else begin
      down_nodes nodes;
      down_site_services t.ctx site;
      Some
        (Printf.sprintf "%s: site-wide power outage, %d nodes and all services down"
           site (List.length nodes))
    end
  | Network_partition, Site site ->
    let nodes = site_nodes t.ctx site in
    if nodes = [] then None
    else begin
      (* The site keeps running but is unreachable from the rest of the
         platform — indistinguishable from down for every consumer. *)
      down_nodes nodes;
      down_site_services t.ctx site;
      Hashtbl.replace t.ctx.flags (partition_flag site) "site unreachable";
      Some
        (Printf.sprintf "%s: network partition, site unreachable (%d nodes)" site
           (List.length nodes))
    end
  | Pdu_failure, Rack (cluster, rack) ->
    let nodes = rack_nodes t.ctx cluster rack in
    if nodes = [] then None
    else begin
      down_nodes nodes;
      Some
        (Printf.sprintf "%s rack %d: PDU failure, %d nodes lost power" cluster rack
           (List.length nodes))
    end
  | _ -> None

let apply t ~now kind target what =
  let fault =
    { id = t.next_id; kind; target; injected_at = now; what; detected_at = None;
      repaired_at = None }
  in
  t.next_id <- t.next_id + 1;
  t.faults <- fault :: t.faults;
  Some fault

let node_of ctx host = Hashtbl.find_opt ctx.by_host host

let effect_on_host t kind node =
  let host = node.Node.host in
  match kind with
  | Cpu_cstates ->
    update_settings node (fun s -> { s with Hardware.c_states = true });
    Some (Printf.sprintf "%s: C-states silently re-enabled" host)
  | Cpu_hyperthreading ->
    update_settings node (fun s -> { s with Hardware.hyperthreading = true });
    Some (Printf.sprintf "%s: hyperthreading enabled after BIOS reset" host)
  | Cpu_turbo ->
    update_settings node (fun s -> { s with Hardware.turbo_boost = true });
    Some (Printf.sprintf "%s: turbo boost enabled after BIOS reset" host)
  | Cpu_governor ->
    update_settings node (fun s -> { s with Hardware.power_governor = "ondemand" });
    Some (Printf.sprintf "%s: power governor back to ondemand" host)
  | Bios_drift ->
    let hw = node.Node.actual in
    node.Node.actual <-
      { hw with Hardware.bios = { hw.Hardware.bios with Hardware.bios_version = "9.9.9" } };
    Some (Printf.sprintf "%s: BIOS version differs from cluster baseline" host)
  | Disk_firmware ->
    update_first_disk node (fun d ->
        { d with Hardware.firmware = "~old-" ^ d.Hardware.firmware });
    Some (Printf.sprintf "%s: disk replaced with different firmware version" host)
  | Disk_write_cache ->
    update_first_disk node (fun d -> { d with Hardware.write_cache = false });
    Some (Printf.sprintf "%s: disk write cache disabled" host)
  | Ram_dimm_loss ->
    let hw = node.Node.actual in
    let mem = hw.Hardware.memory in
    if mem.Hardware.dimm_count <= 1 then None
    else begin
      let per_dimm = mem.Hardware.ram_gb / mem.Hardware.dimm_count in
      node.Node.actual <-
        { hw with
          Hardware.memory =
            { Hardware.ram_gb = mem.Hardware.ram_gb - per_dimm;
              dimm_count = mem.Hardware.dimm_count - 1 } };
      Some (Printf.sprintf "%s: one DIMM lost after maintenance" host)
    end
  | Random_reboots ->
    node.Node.behaviour.Node.random_reboot_mtbf <- Some (12.0 *. 3600.0);
    Some (Printf.sprintf "%s: node randomly reboots" host)
  | Console_broken ->
    node.Node.behaviour.Node.console_broken <- true;
    Some (Printf.sprintf "%s: serial console unusable" host)
  | Refapi_desync -> (
    match Refapi.corrupt t.ctx.refapi ~rng:t.rng ~host with
    | Some what -> Some (Printf.sprintf "%s: %s" host what)
    | None -> None)
  | Oar_property_desync ->
    Hashtbl.replace t.ctx.flags ("oar_desync:" ^ host) "stale property";
    Some (Printf.sprintf "%s: OAR property diverges from reference API" host)
  | Cabling_swap | Kwapi_misattribution | Kernel_boot_race | Ofed_flaky
  | Service_outage | Env_image_corrupt | Ci_outage | Build_hang | Queue_loss
  | Serve_crash | Site_outage | Pdu_failure | Network_partition ->
    None

let inject t ~now kind =
  match kind with
  | Cpu_cstates | Cpu_hyperthreading | Cpu_turbo | Cpu_governor | Bios_drift
  | Disk_firmware | Disk_write_cache | Ram_dimm_loss | Random_reboots
  | Console_broken | Refapi_desync | Oar_property_desync -> (
    match weighted_node t ~filter:(fun _ -> true) with
    | None -> None
    | Some node -> (
      match effect_on_host t kind node with
      | Some what -> apply t ~now kind (Host node.Node.host) what
      | None -> None))
  | Cabling_swap | Kwapi_misattribution -> (
    (* Two distinct nodes of the same site. *)
    match weighted_node t ~filter:(fun _ -> true) with
    | None -> None
    | Some a -> (
      match
        weighted_node t ~filter:(fun n ->
            String.equal n.Node.site_name a.Node.site_name
            && not (String.equal n.Node.host a.Node.host))
      with
      | None -> None
      | Some b ->
        let ha = a.Node.host and hb = b.Node.host in
        if kind = Cabling_swap then begin
          Network.swap_cables t.ctx.network ha hb;
          apply t ~now kind (Host_pair (ha, hb))
            (Printf.sprintf "network cables of %s and %s swapped" ha hb)
        end
        else begin
          Hashtbl.replace t.ctx.flags ("kwapi_swap:" ^ ha) hb;
          Hashtbl.replace t.ctx.flags ("kwapi_swap:" ^ hb) ha;
          apply t ~now kind (Host_pair (ha, hb))
            (Printf.sprintf "wattmeter channels of %s and %s swapped" ha hb)
        end))
  | Kernel_boot_race -> (
    match random_cluster t ~filter:(fun _ -> true) with
    | None -> None
    | Some spec ->
      let cluster = spec.Inventory.cluster in
      List.iter
        (fun n -> n.Node.behaviour.Node.boot_race <- true)
        (cluster_nodes t.ctx cluster);
      apply t ~now kind (Cluster cluster)
        (Printf.sprintf "%s: kernel race delays boots" cluster))
  | Ofed_flaky -> (
    match random_cluster t ~filter:(fun spec -> spec.Inventory.has_ib) with
    | None -> None
    | Some spec ->
      let cluster = spec.Inventory.cluster in
      List.iter
        (fun n -> n.Node.behaviour.Node.ofed_flaky <- true)
        (cluster_nodes t.ctx cluster);
      apply t ~now kind (Cluster cluster)
        (Printf.sprintf "%s: OFED stack randomly fails to start applications" cluster))
  | Service_outage ->
    let site = Simkit.Prng.choose_list t.rng Inventory.sites in
    let service = Simkit.Prng.choose_list t.rng Services.all_kinds in
    let severity =
      let p = if Services.is_experimental service then 0.5 else 0.25 in
      if Simkit.Prng.chance t.rng p then Services.Down else Services.Degraded
    in
    Services.set_state t.ctx.services ~site service severity;
    apply t ~now kind (Site_service (site, service))
      (Printf.sprintf "%s@%s: service %s" (Services.kind_to_string service) site
         (match severity with Services.Down -> "down" | _ -> "degraded"))
  | Ci_outage | Build_hang | Queue_loss | Serve_crash ->
    (* Infrastructure faults: one at a time per kind; the flag is read
       by the resilience/serving layer, which drives the degraded
       modes. *)
    let key = Option.get (infra_flag kind) in
    if Hashtbl.mem t.ctx.flags key then None
    else begin
      Hashtbl.replace t.ctx.flags key "infrastructure fault";
      apply t ~now kind (Global key)
        (match kind with
         | Ci_outage -> "CI server unreachable: triggers deferred"
         | Build_hang -> "builds hang instead of completing"
         | Serve_crash -> "status-page service crashed: in-memory snapshots lost"
         | _ -> "CI build queue lost")
    end
  | Site_outage | Network_partition -> (
    let site = Simkit.Prng.choose_list t.rng Inventory.sites in
    let target = Site site in
    if target_already_hit t target then None
    else
      match correlated_effect t kind target with
      | Some what -> apply t ~now kind target what
      | None -> None)
  | Pdu_failure -> (
    match random_cluster t ~filter:(fun _ -> true) with
    | None -> None
    | Some spec ->
      let cluster = spec.Inventory.cluster in
      let racks = 1 + rack_of_index spec.Inventory.nodes in
      let rack = Simkit.Prng.int t.rng racks in
      let target = Rack (cluster, rack) in
      if target_already_hit t target then None
      else (
        match correlated_effect t kind target with
        | Some what -> apply t ~now kind target what
        | None -> None))
  | Env_image_corrupt ->
    (* The target image is picked by the registered consumer through the
       flag; we draw from the standard 14-image list by index so testbed
       does not depend on the kadeploy library. *)
    let image_index = Simkit.Prng.int t.rng 14 in
    let key = Printf.sprintf "env_corrupt:%d" image_index in
    if Hashtbl.mem t.ctx.flags key then None
    else begin
      Hashtbl.replace t.ctx.flags key "corrupt postinstall";
      apply t ~now kind (Global key)
        (Printf.sprintf "environment image #%d corrupt" image_index)
    end

let inject_on t ~now kind target =
  match (kind, target) with
  | ( ( Cpu_cstates | Cpu_hyperthreading | Cpu_turbo | Cpu_governor | Bios_drift
      | Disk_firmware | Disk_write_cache | Ram_dimm_loss | Random_reboots
      | Console_broken | Refapi_desync | Oar_property_desync ),
      Host host ) -> (
    match node_of t.ctx host with
    | None -> None
    | Some node -> (
      match effect_on_host t kind node with
      | Some what -> apply t ~now kind (Host host) what
      | None -> None))
  | Cabling_swap, Host_pair (a, b) ->
    Network.swap_cables t.ctx.network a b;
    apply t ~now kind target (Printf.sprintf "network cables of %s and %s swapped" a b)
  | Kwapi_misattribution, Host_pair (a, b) ->
    Hashtbl.replace t.ctx.flags ("kwapi_swap:" ^ a) b;
    Hashtbl.replace t.ctx.flags ("kwapi_swap:" ^ b) a;
    apply t ~now kind target
      (Printf.sprintf "wattmeter channels of %s and %s swapped" a b)
  | Kernel_boot_race, Cluster cluster ->
    List.iter
      (fun n -> n.Node.behaviour.Node.boot_race <- true)
      (cluster_nodes t.ctx cluster);
    apply t ~now kind target (Printf.sprintf "%s: kernel race delays boots" cluster)
  | Ofed_flaky, Cluster cluster ->
    List.iter
      (fun n -> n.Node.behaviour.Node.ofed_flaky <- true)
      (cluster_nodes t.ctx cluster);
    apply t ~now kind target (Printf.sprintf "%s: OFED flaky" cluster)
  | Service_outage, Site_service (site, service) ->
    Services.set_state t.ctx.services ~site service Services.Down;
    apply t ~now kind target
      (Printf.sprintf "%s@%s down" (Services.kind_to_string service) site)
  | Env_image_corrupt, Global key ->
    Hashtbl.replace t.ctx.flags key "corrupt postinstall";
    apply t ~now kind target (key ^ " corrupt")
  | (Site_outage | Network_partition), Site site ->
    if
      (not (List.mem site Inventory.sites))
      || target_already_hit t target
    then None
    else (
      match correlated_effect t kind target with
      | Some what -> apply t ~now kind target what
      | None -> None)
  | Pdu_failure, Rack (cluster, rack) ->
    (* Validated: the cluster must exist and the rack index must cover at
       least one node. *)
    let valid =
      match Inventory.find_cluster cluster with
      | Some spec -> rack >= 0 && rack <= rack_of_index spec.Inventory.nodes
      | None -> false
    in
    if (not valid) || target_already_hit t target then None
    else (
      match correlated_effect t kind target with
      | Some what -> apply t ~now kind target what
      | None -> None)
  | (Ci_outage | Build_hang | Queue_loss | Serve_crash), Global key
    when infra_flag kind = Some key ->
    (* Validated: the target key must be the kind's canonical flag, and
       only one fault per kind may be active at a time (like inject). *)
    if Hashtbl.mem t.ctx.flags key then None
    else begin
      Hashtbl.replace t.ctx.flags key "infrastructure fault";
      apply t ~now kind target (key ^ " active")
    end
  | _ -> None

(* ---- repair ------------------------------------------------------------ *)

let revert t fault =
  let ctx = t.ctx in
  match (fault.kind, fault.target) with
  | Cpu_cstates, Host host
  | Cpu_hyperthreading, Host host
  | Cpu_turbo, Host host
  | Cpu_governor, Host host -> (
    match node_of ctx host with
    | Some node ->
      update_settings node (fun _ -> node.Node.reference.Hardware.settings)
    | None -> ())
  | Bios_drift, Host host -> (
    match node_of ctx host with
    | Some node ->
      let hw = node.Node.actual in
      node.Node.actual <- { hw with Hardware.bios = node.Node.reference.Hardware.bios }
    | None -> ())
  | (Disk_firmware | Disk_write_cache), Host host -> (
    match node_of ctx host with
    | Some node ->
      let hw = node.Node.actual in
      node.Node.actual <- { hw with Hardware.disks = node.Node.reference.Hardware.disks }
    | None -> ())
  | Ram_dimm_loss, Host host -> (
    match node_of ctx host with
    | Some node ->
      let hw = node.Node.actual in
      node.Node.actual <-
        { hw with Hardware.memory = node.Node.reference.Hardware.memory }
    | None -> ())
  | Random_reboots, Host host -> (
    match node_of ctx host with
    | Some node ->
      node.Node.behaviour.Node.random_reboot_mtbf <- None;
      if node.Node.state = Node.Down then node.Node.state <- Node.Alive
    | None -> ())
  | Console_broken, Host host -> (
    match node_of ctx host with
    | Some node -> node.Node.behaviour.Node.console_broken <- false
    | None -> ())
  | Refapi_desync, Host host -> (
    match node_of ctx host with
    | Some node -> Refapi.publish_node ctx.refapi node
    | None -> ())
  | Oar_property_desync, Host host -> Hashtbl.remove ctx.flags ("oar_desync:" ^ host)
  | Cabling_swap, Host_pair (a, b) ->
    Network.repair_host ctx.network a;
    Network.repair_host ctx.network b
  | Kwapi_misattribution, Host_pair (a, b) ->
    Hashtbl.remove ctx.flags ("kwapi_swap:" ^ a);
    Hashtbl.remove ctx.flags ("kwapi_swap:" ^ b)
  | Kernel_boot_race, Cluster cluster ->
    List.iter (fun n -> n.Node.behaviour.Node.boot_race <- false)
      (cluster_nodes ctx cluster)
  | Ofed_flaky, Cluster cluster ->
    List.iter (fun n -> n.Node.behaviour.Node.ofed_flaky <- false)
      (cluster_nodes ctx cluster)
  | Service_outage, Site_service (site, service) ->
    Services.repair ctx.services ~site service
  | Env_image_corrupt, Global key -> Hashtbl.remove ctx.flags key
  | (Ci_outage | Build_hang | Queue_loss | Serve_crash), Global key ->
    Hashtbl.remove ctx.flags key
  | Site_outage, Site site ->
    (* Power restored: everything at the site boots back up.  Nodes that
       were dead for unrelated reasons come back too — restoring power
       reboots the whole room. *)
    revive_nodes (site_nodes ctx site);
    repair_site_services ctx site
  | Network_partition, Site site ->
    revive_nodes (site_nodes ctx site);
    repair_site_services ctx site;
    Hashtbl.remove ctx.flags (partition_flag site)
  | Pdu_failure, Rack (cluster, rack) -> revive_nodes (rack_nodes ctx cluster rack)
  | _ -> ()

let repair t ~now fault =
  if fault.repaired_at = None then begin
    revert t fault;
    fault.repaired_at <- Some now
  end

let mark_detected _t ~now fault =
  match fault.detected_at with
  | Some earlier when earlier <= now -> ()
  | _ -> fault.detected_at <- Some now

let active t = List.rev (List.filter (fun f -> f.repaired_at = None) t.faults)
let history t = List.rev t.faults

let active_on_host t host =
  active t
  |> List.filter (fun f ->
         match f.target with
         | Host h -> String.equal h host
         | Host_pair (a, b) -> String.equal a host || String.equal b host
         | Cluster c -> (
           match node_of t.ctx host with
           | Some node -> String.equal node.Node.cluster_name c
           | None -> false)
         | Rack (c, r) -> (
           match node_of t.ctx host with
           | Some node ->
             String.equal node.Node.cluster_name c
             && rack_of_index node.Node.index = r
           | None -> false)
         | Site s -> (
           match node_of t.ctx host with
           | Some node -> String.equal node.Node.site_name s
           | None -> false)
         | Site_service _ | Global _ -> false)
