(** Fault injection: the ground-truth problems the testing framework is
    supposed to uncover.

    Every fault kind corresponds to a bug class the paper reports as
    real: CPU settings drift (power management, hyperthreading, turbo
    boost), disk firmware/cache differences, cabling issues (including
    wrong monitoring attribution), RAM loss after maintenance, random
    reboots, a kernel race delaying boots, OFED random start failures,
    flapping services and stale descriptions.

    The [Ci_outage], [Build_hang], [Queue_loss] and [Serve_crash] kinds
    degrade the *testing infrastructure itself* (the paper's "Jenkins
    misbehaves, builds hang" lesson): they only set flags
    ({!ci_outage_flag} etc.) that the framework's resilience and
    serving layers translate into degraded modes.

    The correlated kinds take out many nodes in one event, exercising
    mass quarantine and graceful degradation in the self-healing loop:
    [Site_outage] (site-wide power loss: every node and service of the
    site goes down), [Pdu_failure] (one rack of a cluster — a
    {!rack_size}-node slice — loses power) and [Network_partition] (the
    site keeps running but is unreachable, which is indistinguishable
    from down for every consumer; the {!partition_flag} records the
    distinction). *)

type kind =
  | Cpu_cstates
  | Cpu_hyperthreading
  | Cpu_turbo
  | Cpu_governor
  | Bios_drift
  | Disk_firmware
  | Disk_write_cache
  | Ram_dimm_loss
  | Cabling_swap
  | Kwapi_misattribution
  | Random_reboots
  | Kernel_boot_race
  | Ofed_flaky
  | Console_broken
  | Service_outage
  | Refapi_desync
  | Oar_property_desync
  | Env_image_corrupt
  | Ci_outage
  | Build_hang
  | Queue_loss
  | Serve_crash
  | Site_outage
  | Pdu_failure
  | Network_partition

type target =
  | Host of string
  | Host_pair of string * string
  | Cluster of string
  | Rack of string * int  (** cluster, 0-based rack index (see {!rack_size}) *)
  | Site of string
  | Site_service of string * Services.kind
  | Global of string  (** free-form, e.g. an environment image name *)

type fault = {
  id : int;
  kind : kind;
  target : target;
  injected_at : float;
  what : string;  (** human-readable description *)
  mutable detected_at : float option;
  mutable repaired_at : float option;
}

type ctx = {
  nodes : Node.t array;
  by_host : (string, Node.t) Hashtbl.t;
  network : Network.t;
  services : Services.t;
  refapi : Refapi.t;
  flags : (string, string) Hashtbl.t;
      (** out-of-band degradations consulted by other subsystems, e.g.
          ["oar_desync:<host>"] or ["env_corrupt:<image>"] *)
}

type t

val all_kinds : kind list
val kind_to_string : kind -> string

val category : kind -> string
(** Coarse bug category used by the results table of the paper
    (["cpu-settings"], ["disk"], ["cabling"], ["infrastructure"],
    ["description"], ["services"], ["software"], plus ["ci"] for the
    testing-infrastructure kinds and ["correlated"] for the mass-outage
    kinds). *)

val rack_size : int
(** Nodes behind one PDU: a [Rack (cluster, r)] covers the cluster's
    1-based node indices in [\[r x rack_size + 1, (r+1) x rack_size\]]. *)

val rack_of_index : int -> int
(** Rack of a node's 1-based index within its cluster. *)

val partition_flag : string -> string
(** Flag key raised while a [Network_partition] isolates the site. *)

val ci_outage_flag : string
val build_hang_flag : string
val queue_loss_flag : string
val serve_crash_flag : string
(** Canonical flag keys (and [Global] targets) of the infrastructure
    fault kinds.  [serve_crash_flag] is consumed by the framework's
    status-page serving layer: while raised, the service's in-memory
    snapshots are considered lost and it must rebuild from its
    build-completion journal. *)

val create : rng:Simkit.Prng.t -> ctx -> t
val context : t -> ctx

val inject : t -> now:float -> kind -> fault option
(** Pick a suitable random target (weighted towards older hardware for
    hardware kinds), apply the effect, and record the fault.  [None] when
    no suitable target exists (e.g. OFED fault with no IB cluster left
    unaffected). *)

val inject_on : t -> now:float -> kind -> target -> fault option
(** Deterministic-target variant for tests; validates the target. *)

val repair : t -> now:float -> fault -> unit
(** Undo the fault's effect (operator action).  Idempotent. *)

val mark_detected : t -> now:float -> fault -> unit
(** First detection time; later calls keep the earliest. *)

val active : t -> fault list
(** Unrepaired faults, oldest first. *)

val history : t -> fault list
(** All faults ever injected, oldest first. *)

val active_on_host : t -> string -> fault list

val flag : ctx -> string -> string option
(** Lookup of an out-of-band degradation flag. *)
