type spec = {
  index : int;
  id : string;
  seed : int64;
  fault_bias : float;
  executors : int;
  workload_scale : float;
}

type ranges = {
  fault_bias : float * float;
  executors : int * int;
  workload_scale : float * float;
}

let default_ranges =
  { fault_bias = (0.6, 1.6); executors = (6, 14); workload_scale = (0.5, 1.5) }

let reference_ranges =
  { fault_bias = (1.0, 1.0); executors = (10, 10); workload_scale = (1.0, 1.0) }

let validate ranges =
  let check_f what (lo, hi) =
    if not (lo > 0.0) || hi < lo then
      invalid_arg (Printf.sprintf "Fleet.synthesize: bad %s range" what)
  in
  check_f "fault_bias" ranges.fault_bias;
  check_f "workload_scale" ranges.workload_scale;
  let lo, hi = ranges.executors in
  if lo < 1 || hi < lo then invalid_arg "Fleet.synthesize: bad executors range"

let uniform rng (lo, hi) = lo +. (Simkit.Prng.float rng *. (hi -. lo))

let synthesize ~seed ~count ?(names = []) ranges =
  if count <= 0 then invalid_arg "Fleet.synthesize: count must be positive";
  validate ranges;
  List.init count (fun index ->
      (* One stateless stream per member: spec i never depends on how
         many members precede it or on who consumed the parent stream.
         Derived at the registered fleet tag range — bare [index] would
         alias the federation interleave (0x1E) and coordinator (0xC0)
         streams once fleets grow past 30/192 members (Simkit.Streams,
         lint L020). *)
      let rng =
        Simkit.Prng.create
          (Simkit.Prng.derive seed (Simkit.Streams.fleet_member_tag index))
      in
      let id =
        match List.nth_opt names index with
        | Some name -> name
        | None -> Printf.sprintf "tb%02d" index
      in
      let elo, ehi = ranges.executors in
      {
        index;
        id;
        seed = Simkit.Prng.next_int64 rng;
        fault_bias = uniform rng ranges.fault_bias;
        executors = Simkit.Prng.int_in rng elo ehi;
        workload_scale = uniform rng ranges.workload_scale;
      })
