(** A testbed node: identity, reference vs actual hardware, physical
    state machine and probe-visible measurements.

    Resource allocation (who reserved the node) lives in the OAR library;
    this module only models the machine itself. *)

type state =
  | Alive  (** booted into some environment, reachable *)
  | Rebooting
  | Deploying
  | Down  (** failed; needs operator action *)

(** Administrative health, orthogonal to the physical {!state}: the
    self-healing loop's per-node state machine (the real platform's
    suspected/dead resource states).  OAR only hands out {!Healthy}
    nodes; everything else is sidelined until re-verification passes. *)
type health =
  | Healthy
  | Suspected  (** suspicion accumulated; pulled out pending decay or escalation *)
  | Quarantined  (** over the quarantine threshold; awaiting an operator *)
  | Repairing  (** operator working on it (MTTR running) *)
  | Reverifying  (** repaired; must pass the verification test to rejoin *)
  | Retired  (** gave up after repeated repair failures; terminal *)

type behaviour = {
  mutable random_reboot_mtbf : float option;
      (** spontaneous reboots with this exponential MTBF (seconds) *)
  mutable boot_race : bool;  (** kernel race ⇒ occasional long boot delays *)
  mutable ofed_flaky : bool;  (** IB stack randomly fails to start apps *)
  mutable console_broken : bool;  (** serial console service unusable *)
}

type t = {
  name : string;  (** e.g. ["graphene-12"] *)
  host : string;  (** fully qualified, e.g. ["graphene-12.nancy"] *)
  site_name : string;
  cluster_name : string;
  index : int;  (** 1-based index within the cluster *)
  reference : Hardware.t;  (** what the Reference API describes *)
  mutable actual : Hardware.t;  (** ground truth, mutated by faults *)
  mutable state : state;
  mutable health : health;  (** administrative state; {!Healthy} at build *)
  mutable deployed_env : string;  (** currently installed environment *)
  mutable vlan : int;  (** 0 = default production VLAN *)
  behaviour : behaviour;
  rng : Simkit.Prng.t;  (** per-node noise stream *)
  mutable boot_count : int;
  mutable unexpected_reboots : int;
}

val make :
  rng:Simkit.Prng.t ->
  site:string ->
  cluster:string ->
  index:int ->
  Hardware.t ->
  t
(** A healthy node whose actual hardware equals the reference and which
    runs the standard environment ["std"] in the default VLAN. *)

val state_to_string : state -> string
val health_to_string : health -> string

val is_available : t -> bool
(** Alive — the only state in which OAR may hand the node to a job. *)

val in_service : t -> bool
(** {!Healthy} — not sidelined by the self-healing loop.  Nodes start in
    service and stay there unless a health supervisor is attached, so
    callers may gate on this unconditionally. *)

val boot_duration : t -> float
(** Sample one boot duration (seconds): normal around 120 s, plus a heavy
    delay tail when the kernel boot-race fault is active, as in the
    paper's "race condition in the Linux kernel caused boot delays". *)

val boot_fails : t -> bool
(** Sample whether this boot attempt leaves the node {!Down}. *)

val cpu_benchmark : t -> float
(** Measured compute score (arbitrary units, nominal 1000 for mandated
    settings at 2.0 GHz per-core-GHz product), including drifted-settings
    effects and ±1% measurement noise. *)

val disk_benchmark : t -> float
(** Measured sequential disk bandwidth (MB/s) of the first disk, with
    ±2% noise.  @raise Invalid_argument if the node has no disk. *)

val ib_start_ok : t -> bool
(** Whether an InfiniBand application manages to start (the OFED bug makes
    this random on affected nodes); [true] when the node has no IB. *)

val reset_to_reference : t -> unit
(** Operator repair: actual hardware snaps back to the reference
    description and behaviour flags clear. *)

val pp : Format.formatter -> t -> unit
