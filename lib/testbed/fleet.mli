(** Federation inventory synthesis: N testbeds cloned from the
    reference Grid'5000-2017 instance and perturbed around it.

    The paper validates one 894-node, 8-site testbed; a federation run
    simulates many Grid'5000-class peers.  Each member keeps the
    reference inventory (clusters, sites, catalog coverage all apply
    unchanged) but gets its own PRNG universe plus perturbed operating
    parameters: fault pressure, CI capacity and user contention.  The
    perturbations are drawn from a dedicated stream derived statelessly
    per member ({!Simkit.Prng.derive}), so member [i]'s identity is a
    pure function of the federation seed and [i] — invariant under
    shard count, service order and federation size. *)

type spec = {
  index : int;  (** 0-based position in the federation *)
  id : string;  (** unique name, e.g. ["tb03"] *)
  seed : int64;  (** master seed of the member's own simulation *)
  fault_bias : float;  (** multiplier on the fault arrival rate *)
  executors : int;  (** CI executor count of the member *)
  workload_scale : float;  (** multiplier on user-workload rate/users *)
}

type ranges = {
  fault_bias : float * float;  (** inclusive uniform range, must be > 0 *)
  executors : int * int;  (** inclusive uniform range, must be >= 1 *)
  workload_scale : float * float;  (** inclusive uniform range, must be > 0 *)
}

val default_ranges : ranges
(** Fault pressure 0.6–1.6x, 6–14 executors, workload 0.5–1.5x: peers
    of the same class as the reference, none identical to it. *)

val reference_ranges : ranges
(** Degenerate ranges that clone the reference exactly (bias 1, 10
    executors, workload 1): every member differs only by seed. *)

val synthesize : seed:int64 -> count:int -> ?names:string list -> ranges -> spec list
(** [synthesize ~seed ~count ranges] builds [count] member specs.
    [names] (default auto-generated ["tb00"], ["tb01"], ...) overrides
    member ids; when shorter than [count] the remaining members get
    auto names.  Ranges are validated.
    @raise Invalid_argument on a non-positive count or inverted/empty
    ranges. *)
