type submit_error =
  | No_matching_resource
  | Not_immediately_schedulable of float
  | Service_unavailable

module Filter_cache = Hashtbl.Make (struct
  type t = Expr.t

  let equal = Expr.equal
  let hash = Expr.hash
end)

type t = {
  instance : Testbed.Instance.t;
  props : Property.t;
  gantt : Gantt.t;
  jobs : (int, Job.t) Hashtbl.t;
  mutable next_id : int;
  mutable queue : int list;  (* waiting job ids, submission order *)
  mutable listeners : (Job.t -> unit) list;
  besteffort_scheduled : (int, Job.t) Hashtbl.t;
      (* best-effort jobs currently in [Scheduled]: the release scan in
         [schedule_pass] walks this live set instead of every job ever
         submitted *)
  running : (int, Job.t) Hashtbl.t;
      (* jobs currently in [Running], so consistency checks that run on
         every test round stay O(live) as the job history grows *)
  mutable last_prune : float;  (* gantt pruning runs at most hourly *)
  filter_cache : string array Filter_cache.t;
      (* parsed filter -> matching hosts (sorted); properties change
         rarely (on refresh), so filter evaluation over 894 hosts is
         memoised, keyed structurally so callers holding a pre-parsed
         filter never re-render it to a string *)
}

let engine t = t.instance.Testbed.Instance.engine
let now t = Simkit.Engine.now (engine t)
let instance t = t.instance
let properties t = t.props

let refresh_properties t =
  Property.refresh_from_refapi t.props
    (Testbed.Faults.context t.instance.Testbed.Instance.faults);
  Filter_cache.reset t.filter_cache

let create instance =
  let t =
    {
      instance;
      props = Property.create ();
      gantt = Gantt.create ();
      jobs = Hashtbl.create 256;
      next_id = 1;
      queue = [];
      listeners = [];
      besteffort_scheduled = Hashtbl.create 16;
      running = Hashtbl.create 256;
      last_prune = Float.neg_infinity;
      filter_cache = Filter_cache.create 64;
    }
  in
  refresh_properties t;
  t

let job t id = Hashtbl.find_opt t.jobs id

let jobs t =
  Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs []
  |> List.sort (fun a b -> compare a.Job.id b.Job.id)

let running_jobs t =
  Hashtbl.fold (fun _ j acc -> j :: acc) t.running []
  |> List.sort (fun a b -> compare a.Job.id b.Job.id)
let waiting_jobs t = List.filter (fun j -> j.Job.state = Job.Waiting) (jobs t)

let on_job_end t f = t.listeners <- f :: t.listeners

let finish t job state =
  job.Job.state <- state;
  job.Job.ended_at <- Some (now t);
  Hashtbl.remove t.besteffort_scheduled job.Job.id;
  Hashtbl.remove t.running job.Job.id;
  Gantt.release_job t.gantt ~job:job.Job.id;
  List.iter (fun f -> f job) t.listeners

let matching_hosts_arr t filter =
  match Filter_cache.find_opt t.filter_cache filter with
  | Some hosts -> hosts
  | None ->
    let hosts =
      Property.hosts t.props
      |> List.filter (fun host ->
             Expr.eval filter ~props:(Property.props_fun t.props ~host))
      |> Array.of_list
    in
    Filter_cache.replace t.filter_cache filter hosts;
    hosts

let matching_hosts t filter = Array.to_list (matching_hosts_arr t filter)

let host_usable t host =
  match Testbed.Instance.find_node t.instance host with
  | Some node ->
    node.Testbed.Node.state <> Testbed.Node.Down && Testbed.Node.in_service node
  | None -> false

(* Alive, in service (not sidelined by the health loop), and unreserved
   for the next instant. *)
let host_free_now t ~time host =
  match Testbed.Instance.find_node t.instance host with
  | Some node ->
    Testbed.Node.is_available node
    && Testbed.Node.in_service node
    && Gantt.is_free t.gantt ~host ~start:time ~stop:(time +. 1.0)
  | None -> false

let free_matching_now t filter =
  let time = now t in
  let hosts = matching_hosts_arr t filter in
  Array.fold_right
    (fun host acc -> if host_free_now t ~time host then host :: acc else acc)
    hosts []

let free_at_least t filter n =
  n <= 0
  ||
  let time = now t in
  let hosts = matching_hosts_arr t filter in
  let len = Array.length hosts in
  let found = ref 0 in
  let i = ref 0 in
  while !found < n && !i < len do
    if host_free_now t ~time hosts.(!i) then incr found;
    incr i
  done;
  !found >= n

(* ---- placement --------------------------------------------------------- *)

(* Earliest time >= after when [n] of [hosts] are simultaneously free for
   [duration]; also returns the chosen hosts. *)
let place_group t ~after ~duration ~hosts ~count =
  let usable = List.filter (host_usable t) hosts in
  let needed =
    match count with `N n -> n | `All -> List.length usable
  in
  if needed = 0 || List.length usable < needed then None
  else begin
    let windows =
      List.map (fun h -> (h, Gantt.next_free_window t.gantt ~host:h ~after ~duration)) usable
      (* Earliest-available hosts first, so the early-exit scan below
         finds small placements without touching the whole pool. *)
      |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
    in
    (* Candidate start instants: each host's next window start. *)
    let candidates =
      List.sort_uniq Float.compare (after :: List.map snd windows)
    in
    let feasible_at start =
      (* Collect free hosts, stopping as soon as [needed] are found. *)
      let rec take acc taken = function
        | [] -> if taken >= needed then Some (List.rev acc) else None
        | _ when taken >= needed -> Some (List.rev acc)
        | (h, _) :: rest ->
          if Gantt.is_free t.gantt ~host:h ~start ~stop:(start +. duration) then
            take (h :: acc) (taken + 1) rest
          else take acc taken rest
      in
      take [] 0 windows
    in
    let rec try_candidates = function
      | [] -> None
      | start :: rest -> (
        match feasible_at start with
        | Some chosen -> Some (start, chosen)
        | None -> try_candidates rest)
    in
    match try_candidates candidates with
    | Some placement -> Some placement
    | None ->
      (* All candidate instants collide with reservations that start
         later; fall back to the time when everything is drained. *)
      let horizon =
        List.fold_left
          (fun acc (h, _) ->
            let reservations = Gantt.reservations t.gantt ~host:h in
            List.fold_left (fun acc (_, stop, _) -> Float.max acc stop) acc reservations)
          after windows
      in
      (match feasible_at horizon with
       | Some chosen -> Some (horizon, chosen)
       | None -> None)
  end

(* Find a common start for all groups of a request (fixpoint search). *)
let place_request t ~after request =
  let groups =
    List.map
      (fun g -> (g, matching_hosts t g.Request.filter))
      request.Request.groups
  in
  if List.exists (fun (_, hosts) -> hosts = []) groups then None
  else begin
    let duration = request.Request.walltime in
    let rec search start attempts =
      if attempts > 30 then None
      else begin
        (* Propose each group's earliest placement from [start]; if they
           all agree on [start], check disjointness and commit. *)
        let placements =
          List.map
            (fun (g, hosts) ->
              place_group t ~after:start ~duration ~hosts ~count:g.Request.count)
            groups
        in
        if List.exists (fun p -> p = None) placements then None
        else begin
          let placements = List.filter_map Fun.id placements in
          let latest =
            List.fold_left (fun acc (s, _) -> Float.max acc s) start placements
          in
          if latest > start then search latest (attempts + 1)
          else begin
            (* Same start everywhere; ensure no host double-assigned
               across groups. *)
            let all_hosts = List.concat_map snd placements in
            let distinct = List.sort_uniq String.compare all_hosts in
            if List.length distinct = List.length all_hosts then
              Some (start, all_hosts)
            else begin
              (* Conflicting groups (overlapping filters): nudge forward
                 to break the tie on busy hosts. *)
              search (start +. 60.0) (attempts + 1)
            end
          end
        end
      end
    in
    search after 0
  end

let estimate_start t request =
  match place_request t ~after:(now t) request with
  | Some (start, _) -> Some start
  | None -> None

(* ---- lifecycle --------------------------------------------------------- *)

let rec start_job t job =
  let alive host =
    match Testbed.Instance.find_node t.instance host with
    | Some node -> Testbed.Node.is_available node
    | None -> false
  in
  if job.Job.state <> Job.Scheduled then ()
  else if not (List.for_all alive job.Job.assigned) then begin
    (* A reserved node died before launch: the job errors out; its
       remaining reservation is released.  This is one of the paper's
       "unreliable services" experiences for users. *)
    finish t job Job.Error;
    schedule_pass t
  end
  else begin
    job.Job.state <- Job.Running;
    job.Job.started_at <- Some (now t);
    Hashtbl.remove t.besteffort_scheduled job.Job.id;
    Hashtbl.replace t.running job.Job.id job;
    let run_time = Float.min job.Job.duration job.Job.request.Request.walltime in
    ignore
      (Simkit.Engine.schedule (engine t) ~label:"oar" ~delay:run_time (fun _ ->
           if job.Job.state = Job.Running then begin
             finish t job Job.Terminated;
             schedule_pass t
           end))
  end

and try_place_job t job =
  match place_request t ~after:(now t) job.Job.request with
  | None -> false
  | Some (start, hosts) ->
    let stop = start +. job.Job.request.Request.walltime in
    List.iter
      (fun host -> Gantt.reserve t.gantt ~host ~start ~stop ~job:job.Job.id)
      hosts;
    job.Job.assigned <- hosts;
    job.Job.scheduled_start <- start;
    job.Job.state <- Job.Scheduled;
    if job.Job.jtype = Job.Besteffort then
      Hashtbl.replace t.besteffort_scheduled job.Job.id job;
    if start <= now t +. 1e-6 then start_job t job
    else begin
      (* Best-effort reservations can be re-placed before they start; the
         stale wake-up must then not fire, so it checks the slot it was
         armed for. *)
      let armed_for = start in
      ignore
        (Simkit.Engine.schedule_at (engine t) ~label:"oar" ~time:start (fun _ ->
             if job.Job.scheduled_start = armed_for then start_job t job))
    end;
    true

and schedule_pass t =
  let current = now t in
  (* Expired intervals can never collide with future placements, so
     pruning more than once per simulated hour is pure overhead. *)
  if current -. t.last_prune >= 3600.0 then begin
    t.last_prune <- current;
    Gantt.prune t.gantt ~before:(current -. 3600.0)
  end;
  (* Best-effort reservations that have not started yet are fair game:
     release them so higher-priority jobs can take their slots (they are
     re-placed at the end of this pass).  Only the live Scheduled set is
     scanned — not every job ever submitted — in id (submission) order
     for determinism. *)
  if Hashtbl.length t.besteffort_scheduled > 0 then begin
    let candidates =
      Hashtbl.fold (fun _ j acc -> j :: acc) t.besteffort_scheduled []
      |> List.sort (fun a b -> compare a.Job.id b.Job.id)
    in
    List.iter
      (fun j ->
        if
          j.Job.state = Job.Scheduled
          && j.Job.started_at = None
          && j.Job.scheduled_start > current +. 1.0
        then begin
          Hashtbl.remove t.besteffort_scheduled j.Job.id;
          Gantt.release_job t.gantt ~job:j.Job.id;
          j.Job.assigned <- [];
          j.Job.state <- Job.Waiting;
          if not (List.mem j.Job.id t.queue) then t.queue <- t.queue @ [ j.Job.id ]
        end)
      candidates
  end;
  (* Best-effort jobs go last; otherwise submission order. *)
  let pending =
    List.filter_map (job t) t.queue
    |> List.filter (fun j -> j.Job.state = Job.Waiting)
  in
  let normal, besteffort =
    List.partition (fun j -> j.Job.jtype <> Job.Besteffort) pending
  in
  let done_ids =
    List.filter_map
      (fun j ->
        if try_place_job t j then Some j.Job.id
        else begin
          (* No feasible placement even in the future (e.g. more nodes
             requested than the cluster can ever line up): reject rather
             than retrying the search on every pass. *)
          finish t j Job.Error;
          Some j.Job.id
        end)
      (normal @ besteffort)
  in
  t.queue <- List.filter (fun id -> not (List.mem id done_ids)) t.queue

let submit t ?(user = "anon") ?(jtype = Job.Default) ?duration ?(immediate = false)
    request =
  let site_ok =
    (* The submission goes through one site's OAR server; model a global
       front-end that needs at least one site's OAR to be up. *)
    List.exists
      (fun site -> Testbed.Services.use t.instance.Testbed.Instance.services ~site Testbed.Services.Oar)
      Testbed.Inventory.sites
  in
  if not site_ok then Error Service_unavailable
  else begin
    let duration = Option.value ~default:request.Request.walltime duration in
    let job =
      {
        Job.id = t.next_id;
        user;
        jtype;
        request;
        submitted_at = now t;
        duration;
        state = Job.Waiting;
        assigned = [];
        scheduled_start = nan;
        started_at = None;
        ended_at = None;
      }
    in
    (* Cheap sanity check first: every group must match at least one
       usable host; the real placement happens in [schedule_pass]. *)
    let matchable =
      List.for_all
        (fun g -> List.exists (host_usable t) (matching_hosts t g.Request.filter))
        request.Request.groups
    in
    if not matchable then Error No_matching_resource
    else if immediate then begin
      match place_request t ~after:(now t) request with
      | None -> Error No_matching_resource
      | Some (start, _) when start > now t +. 1.0 ->
        Error (Not_immediately_schedulable start)
      | Some _ ->
        t.next_id <- t.next_id + 1;
        Hashtbl.replace t.jobs job.Job.id job;
        t.queue <- t.queue @ [ job.Job.id ];
        schedule_pass t;
        Ok job
    end
    else begin
      t.next_id <- t.next_id + 1;
      Hashtbl.replace t.jobs job.Job.id job;
      t.queue <- t.queue @ [ job.Job.id ];
      schedule_pass t;
      Ok job
    end
  end

let submit_at t ?(user = "anon") ?(jtype = Job.Default) ?duration ~start request =
  if start < now t then invalid_arg "Manager.submit_at: start in the past";
  let duration = Option.value ~default:request.Request.walltime duration in
  match place_request t ~after:start request with
  | None -> Error No_matching_resource
  | Some (found_start, hosts) ->
    if found_start > start +. 1e-6 then Error (Not_immediately_schedulable found_start)
    else begin
      let job =
        {
          Job.id = t.next_id;
          user;
          jtype;
          request;
          submitted_at = now t;
          duration;
          state = Job.Scheduled;
          assigned = hosts;
          scheduled_start = start;
          started_at = None;
          ended_at = None;
        }
      in
      t.next_id <- t.next_id + 1;
      Hashtbl.replace t.jobs job.Job.id job;
      if jtype = Job.Besteffort then
        Hashtbl.replace t.besteffort_scheduled job.Job.id job;
      let stop = start +. request.Request.walltime in
      List.iter (fun host -> Gantt.reserve t.gantt ~host ~start ~stop ~job:job.Job.id) hosts;
      ignore
        (Simkit.Engine.schedule_at (engine t) ~label:"oar" ~time:start (fun _ -> start_job t job));
      Ok job
    end

let cancel t job =
  match job.Job.state with
  | Job.Waiting | Job.Scheduled | Job.Running ->
    finish t job Job.Cancelled;
    t.queue <- List.filter (fun id -> id <> job.Job.id) t.queue;
    schedule_pass t
  | Job.Terminated | Job.Error | Job.Cancelled -> ()

let utilisation t ~lo ~hi =
  let hosts = Property.hosts t.props in
  match hosts with
  | [] -> 0.0
  | _ ->
    let total =
      List.fold_left (fun acc host -> acc +. Gantt.utilisation t.gantt ~host ~lo ~hi) 0.0 hosts
    in
    total /. float_of_int (List.length hosts)

let assigned_busy_consistent t =
  let running = running_jobs t in
  let seen = Hashtbl.create 64 in
  List.for_all
    (fun job ->
      List.for_all
        (fun host ->
          let fresh = not (Hashtbl.mem seen host) in
          Hashtbl.replace seen host ();
          let node_ok =
            match Testbed.Instance.find_node t.instance host with
            | Some node -> (
              match node.Testbed.Node.state with
              | Testbed.Node.Alive -> true
              | Testbed.Node.Deploying | Testbed.Node.Rebooting ->
                job.Job.jtype = Job.Deploy
              | Testbed.Node.Down -> false)
            | None -> false
          in
          fresh && node_ok)
        job.Job.assigned)
    running
