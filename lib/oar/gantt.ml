type interval = { start : float; stop : float; job : int }

type t = {
  slots : (string, interval list) Hashtbl.t;
  by_job : (int, string list) Hashtbl.t;
      (* hosts a job has (or had) reservations on, so [release_job]
         touches only those instead of folding over the whole cluster;
         entries may go stale after [truncate]/[prune] (releasing a
         host the job no longer occupies is a no-op) and are dropped on
         [release_job] *)
}
(* Interval lists are kept sorted by [start] and non-overlapping. *)

let create () = { slots = Hashtbl.create 1024; by_job = Hashtbl.create 256 }

let get t host = Option.value ~default:[] (Hashtbl.find_opt t.slots host)
let set t host intervals = Hashtbl.replace t.slots host intervals

let overlaps a b = a.start < b.stop && b.start < a.stop

let reserve t ~host ~start ~stop ~job =
  if stop <= start then invalid_arg "Gantt.reserve: empty interval";
  let interval = { start; stop; job } in
  let existing = get t host in
  if List.exists (overlaps interval) existing then
    invalid_arg "Gantt.reserve: overlapping reservation";
  let sorted =
    List.sort (fun a b -> compare a.start b.start) (interval :: existing)
  in
  set t host sorted;
  let hosts = Option.value ~default:[] (Hashtbl.find_opt t.by_job job) in
  if not (List.mem host hosts) then Hashtbl.replace t.by_job job (host :: hosts)

let release t ~host ~job =
  set t host (List.filter (fun i -> i.job <> job) (get t host));
  match Hashtbl.find_opt t.by_job job with
  | Some hosts when List.mem host hosts ->
    Hashtbl.replace t.by_job job (List.filter (fun h -> h <> host) hosts)
  | _ -> ()

let release_job t ~job =
  match Hashtbl.find_opt t.by_job job with
  | None -> ()
  | Some hosts ->
    Hashtbl.remove t.by_job job;
    List.iter
      (fun host -> set t host (List.filter (fun i -> i.job <> job) (get t host)))
      hosts

let truncate t ~host ~job ~stop =
  let updated =
    List.filter_map
      (fun i ->
        if i.job <> job then Some i
        else if stop <= i.start then None
        else Some { i with stop = Float.min i.stop stop })
      (get t host)
  in
  set t host updated

let is_free t ~host ~start ~stop =
  let probe = { start; stop; job = -1 } in
  not (List.exists (overlaps probe) (get t host))

let free_at t ~host time = is_free t ~host ~start:time ~stop:(time +. 1e-9)

let next_free_window t ~host ~after ~duration =
  let intervals = get t host in
  let rec scan candidate = function
    | [] -> candidate
    | i :: rest ->
      if i.stop <= candidate then scan candidate rest
      else if i.start >= candidate +. duration then candidate
      else scan (Float.max candidate i.stop) rest
  in
  scan after intervals

let reservations t ~host = List.map (fun i -> (i.start, i.stop, i.job)) (get t host)

let prune t ~before =
  let hosts = Hashtbl.fold (fun host _ acc -> host :: acc) t.slots [] in
  List.iter
    (fun host ->
      let intervals = get t host in
      (* Only rebuild lists that actually hold expired intervals. *)
      if List.exists (fun i -> i.stop < before) intervals then
        set t host (List.filter (fun i -> i.stop >= before) intervals))
    hosts

let utilisation t ~host ~lo ~hi =
  if hi <= lo then 0.0
  else begin
    let covered =
      List.fold_left
        (fun acc i ->
          let s = Float.max lo i.start and e = Float.min hi i.stop in
          if e > s then acc +. (e -. s) else acc)
        0.0 (get t host)
    in
    covered /. (hi -. lo)
  end
