type profile = {
  base_rate_per_hour : float;
  peak_multiplier : float;
  users : int;
  small_max_nodes : int;
  whole_cluster_share : float;
}

let default_profile =
  {
    base_rate_per_hour = 20.0;
    peak_multiplier = 3.0;
    users = 550;
    small_max_nodes = 4;
    whole_cluster_share = 0.02;
  }

type t = {
  manager : Manager.t;
  rng : Simkit.Prng.t;
  prof : profile;
  mutable running : bool;
  mutable count : int;
  in_flight : (string, int) Hashtbl.t;  (* cluster -> queued+running jobs *)
  job_cluster : (int, string) Hashtbl.t;
}

let scale prof factor =
  if not (factor > 0.0) then invalid_arg "Workload.scale: factor must be positive";
  {
    prof with
    base_rate_per_hour = prof.base_rate_per_hour *. factor;
    users = max 1 (int_of_float (Float.round (float_of_int prof.users *. factor)));
  }

let profile t = t.prof
let submitted t = t.count
let stop t = t.running <- false

let pick_cluster rng =
  (* Zipf-weighted popularity: a few clusters absorb most jobs, which is
     what makes whole-cluster availability rare there. *)
  let n = List.length Testbed.Inventory.clusters in
  let rank = Simkit.Dist.zipf rng ~n ~s:1.1 in
  (List.nth Testbed.Inventory.clusters (rank - 1)).Testbed.Inventory.cluster

(* Users stop piling onto a saturated cluster: the backlog they tolerate
   is bounded, which keeps the simulated queue (and the scheduler's Gantt)
   from growing without bound on popular clusters. *)
let backlog_limit cluster =
  match Testbed.Inventory.find_cluster cluster with
  | Some spec -> Stdlib.max 8 spec.Testbed.Inventory.nodes
  | None -> 8

let in_flight t cluster = Option.value ~default:0 (Hashtbl.find_opt t.in_flight cluster)

let make_request t =
  let rng = t.rng in
  let cluster = pick_cluster rng in
  let filter = Printf.sprintf "cluster='%s'" cluster in
  let walltime =
    (* Median ~1.5 h with a heavy tail capped at 24 h. *)
    Float.min (24.0 *. 3600.0)
      (Simkit.Dist.sample rng (Simkit.Dist.Lognormal (8.6, 1.0)))
  in
  let u = Simkit.Prng.float rng in
  let count =
    if u < t.prof.whole_cluster_share then `All
    else if u < 0.75 then `N (Simkit.Prng.int_in rng 1 t.prof.small_max_nodes)
    else if u < 0.95 then `N (Simkit.Prng.int_in rng 5 16)
    else `N (Simkit.Prng.int_in rng 17 40)
  in
  let request = Request.nodes ~filter count ~walltime in
  let duration = walltime *. (0.3 +. (0.7 *. Simkit.Prng.float rng)) in
  (cluster, request, duration)

let rate_at prof time =
  let base = prof.base_rate_per_hour /. 3600.0 in
  if Simkit.Calendar.is_peak_hours time then base *. prof.peak_multiplier
  else if Simkit.Calendar.is_weekend time then base *. 0.5
  else base

let start ?(profile = default_profile) ~rng manager =
  let t =
    { manager; rng; prof = profile; running = true; count = 0;
      in_flight = Hashtbl.create 64; job_cluster = Hashtbl.create 256 }
  in
  Manager.on_job_end manager (fun job ->
      match Hashtbl.find_opt t.job_cluster job.Job.id with
      | Some cluster ->
        Hashtbl.remove t.job_cluster job.Job.id;
        Hashtbl.replace t.in_flight cluster (Stdlib.max 0 (in_flight t cluster - 1))
      | None -> ());
  let engine = (Manager.instance manager).Testbed.Instance.engine in
  let peak_rate = profile.base_rate_per_hour /. 3600.0 *. profile.peak_multiplier in
  (* Thinning (Lewis-Shedler) for the non-homogeneous Poisson process. *)
  let rec next_arrival () =
    if t.running then begin
      let gap = Simkit.Dist.exponential t.rng ~mean:(1.0 /. peak_rate) in
      ignore
        (Simkit.Engine.schedule engine ~label:"workload" ~delay:gap (fun eng ->
             let time = Simkit.Engine.now eng in
             if t.running then begin
               if Simkit.Prng.chance t.rng (rate_at t.prof time /. peak_rate) then begin
                 let cluster, request, duration = make_request t in
                 if in_flight t cluster < backlog_limit cluster then begin
                   let user =
                     Printf.sprintf "user%03d" (Simkit.Prng.int t.rng t.prof.users)
                   in
                   let jtype =
                     if Simkit.Prng.chance t.rng 0.3 then Job.Deploy else Job.Default
                   in
                   match Manager.submit t.manager ~user ~jtype ~duration request with
                   | Ok job ->
                     t.count <- t.count + 1;
                     Hashtbl.replace t.job_cluster job.Job.id cluster;
                     Hashtbl.replace t.in_flight cluster (in_flight t cluster + 1)
                   | Error _ -> ()
                 end
               end;
               next_arrival ()
             end))
    end
  in
  next_arrival ();
  t
