(** Synthetic user workload.

    Grid'5000 is "heavily used" and "waiting for all nodes of a given
    cluster to be available can take weeks"; the external test scheduler
    exists because of that contention.  This generator submits jobs with
    a diurnal/weekly intensity profile and a realistic size mix so the
    schedulers face the regime the paper describes. *)

type profile = {
  base_rate_per_hour : float;  (** mean submissions per hour at off-peak *)
  peak_multiplier : float;  (** multiplier during working hours *)
  users : int;
  small_max_nodes : int;
  whole_cluster_share : float;  (** fraction of jobs asking nodes=ALL of a cluster *)
}

val default_profile : profile
(** ~20 jobs/h off-peak, 3x during working hours, 550 users (the paper's
    user count), 2% whole-cluster jobs. *)

val scale : profile -> float -> profile
(** [scale p f] multiplies the submission rate and the user population
    by [f] (at least one user survives), leaving the size mix untouched.
    Federation members use it to model testbeds under lighter or heavier
    contention than the reference.
    @raise Invalid_argument when [f] is not positive. *)

type t

val start : ?profile:profile -> rng:Simkit.Prng.t -> Manager.t -> t
(** Begin submitting jobs on the manager's engine; runs until the engine
    stops being advanced. *)

val stop : t -> unit
val submitted : t -> int
val profile : t -> profile
