(** OAR resource-selection expressions.

    The paper's example:
    {v
oarsub -l "cluster='a' and gpu='YES'/nodes=1+cluster='b' and
           eth10g='Y'/nodes=2,walltime=2"
    v}

    This module implements the property-filter sub-language (the part
    before each ['/']): comparisons on node properties combined with
    [and], [or], [not] and parentheses.  {!Request} builds on it for the
    full [-l] syntax. *)

type value = S of string | I of int

type t =
  | Cmp of string * op * value  (** [property op value] *)
  | And of t * t
  | Or of t * t
  | Not of t
  | True  (** empty filter: every node matches *)
  | False  (** provably-contradictory filter: no node matches *)

and op = Eq | Neq | Ge | Le | Gt | Lt

val parse : string -> (t, string) result
(** Parse a filter such as ["cluster='a' and gpu='YES'"].  The empty (or
    blank) string parses to {!True}; the bare keywords [true] and [false]
    parse to {!True} and {!False}. *)

val parse_exn : string -> t
(** @raise Invalid_argument on syntax errors. *)

val equal : t -> t -> bool
(** Structural equality — two filters that would always select the same
    hosts can still differ (no normalisation is attempted). *)

val hash : t -> int
(** Compatible with {!equal}; lets callers memoise per parsed filter
    (e.g. [Hashtbl.Make (Expr)]) without re-rendering strings. *)

val eval : t -> props:(string -> string option) -> bool
(** Evaluate against a property lookup.  String comparisons are
    case-sensitive; numeric operators compare integers when both sides
    parse as integers, strings otherwise.  A missing property makes any
    comparison false (and its [Neq] true). *)

val holds : op -> string -> value -> bool
(** [holds op actual expected] is the single-comparison kernel of {!eval}:
    does the concrete property string [actual] satisfy [op expected]?
    Exposed so static analyses (Semlint's abstract domain) share exactly
    the runtime comparison semantics. *)

val properties_used : t -> string list
(** Sorted, deduplicated property names appearing in the filter. *)

val op_to_string : op -> string

val to_string : t -> string
(** Re-render in OAR syntax (canonical parenthesisation). *)

val normalize : t -> t
(** Semantics-preserving normalisation: restricted negation-normal form
    ([Not] pushes through [And]/[Or]/double negation and flips [Eq]/[Neq],
    but stays on ordering comparisons, whose classical duals are unsound
    when a property is missing or fails to parse as an integer), constant
    folding of {!True}/{!False}, flattening + deduplication of [And]/[Or]
    chains, and conservative contradiction/tautology detection between
    same-property literals (equality pinning, integer-interval emptiness,
    lexicographic bound crossing).  [normalize e] evaluates identically to
    [e] on every property assignment; a {!False} result is a proof that no
    assignment satisfies the filter. *)
