type value = S of string | I of int

type t =
  | Cmp of string * op * value
  | And of t * t
  | Or of t * t
  | Not of t
  | True
  | False

and op = Eq | Neq | Ge | Le | Gt | Lt

(* ---- lexer -------------------------------------------------------------- *)

type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | OP of op
  | LPAREN
  | RPAREN
  | AND
  | OR
  | NOT
  | TRUE
  | FALSE

exception Syntax of string

let lex input =
  let len = String.length input in
  let pos = ref 0 in
  let tokens = ref [] in
  let push tok = tokens := tok :: !tokens in
  let is_ident_char c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
  in
  while !pos < len do
    let c = input.[!pos] in
    match c with
    | ' ' | '\t' | '\n' -> incr pos
    | '(' ->
      push LPAREN;
      incr pos
    | ')' ->
      push RPAREN;
      incr pos
    | '\'' ->
      incr pos;
      let start = !pos in
      while !pos < len && input.[!pos] <> '\'' do
        incr pos
      done;
      if !pos >= len then raise (Syntax "unterminated quoted string");
      push (STRING (String.sub input start (!pos - start)));
      incr pos
    | '=' ->
      push (OP Eq);
      incr pos
    | '!' ->
      if !pos + 1 < len && input.[!pos + 1] = '=' then begin
        push (OP Neq);
        pos := !pos + 2
      end
      else raise (Syntax "expected '=' after '!'")
    | '<' ->
      if !pos + 1 < len && input.[!pos + 1] = '=' then begin
        push (OP Le);
        pos := !pos + 2
      end
      else if !pos + 1 < len && input.[!pos + 1] = '>' then begin
        push (OP Neq);
        pos := !pos + 2
      end
      else begin
        push (OP Lt);
        incr pos
      end
    | '>' ->
      if !pos + 1 < len && input.[!pos + 1] = '=' then begin
        push (OP Ge);
        pos := !pos + 2
      end
      else begin
        push (OP Gt);
        incr pos
      end
    | '0' .. '9' ->
      let start = !pos in
      while !pos < len && (match input.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      push (INT (int_of_string (String.sub input start (!pos - start))))
    | c when is_ident_char c ->
      let start = !pos in
      while !pos < len && is_ident_char input.[!pos] do
        incr pos
      done;
      let word = String.sub input start (!pos - start) in
      (match String.lowercase_ascii word with
       | "and" -> push AND
       | "or" -> push OR
       | "not" -> push NOT
       | "true" -> push TRUE
       | "false" -> push FALSE
       | _ -> push (IDENT word))
    | c -> raise (Syntax (Printf.sprintf "unexpected character %c" c))
  done;
  List.rev !tokens

(* ---- parser: or_expr > and_expr > unary > atom -------------------------- *)

let parse_tokens tokens =
  let rest = ref tokens in
  let peek () = match !rest with [] -> None | tok :: _ -> Some tok in
  let advance () = match !rest with [] -> () | _ :: tl -> rest := tl in
  let rec or_expr () =
    let left = and_expr () in
    match peek () with
    | Some OR ->
      advance ();
      Or (left, or_expr ())
    | _ -> left
  and and_expr () =
    let left = unary () in
    match peek () with
    | Some AND ->
      advance ();
      And (left, and_expr ())
    | _ -> left
  and unary () =
    match peek () with
    | Some NOT ->
      advance ();
      Not (unary ())
    | _ -> atom ()
  and atom () =
    match peek () with
    | Some LPAREN ->
      advance ();
      let inner = or_expr () in
      (match peek () with
       | Some RPAREN ->
         advance ();
         inner
       | _ -> raise (Syntax "expected ')'"))
    | Some TRUE ->
      advance ();
      True
    | Some FALSE ->
      advance ();
      False
    | Some (IDENT prop) -> (
      advance ();
      match peek () with
      | Some (OP op) -> (
        advance ();
        match peek () with
        | Some (STRING s) ->
          advance ();
          Cmp (prop, op, S s)
        | Some (INT i) ->
          advance ();
          Cmp (prop, op, I i)
        | Some (IDENT s) ->
          (* bare-word value, tolerated like OAR does *)
          advance ();
          Cmp (prop, op, S s)
        | _ -> raise (Syntax "expected a value after comparison operator"))
      | _ -> raise (Syntax (Printf.sprintf "expected operator after property %s" prop)))
    | _ -> raise (Syntax "expected a comparison or '('")
  in
  let result = or_expr () in
  if !rest <> [] then raise (Syntax "trailing tokens");
  result

let parse input =
  if String.trim input = "" then Ok True
  else
    match parse_tokens (lex input) with
    | expr -> Ok expr
    | exception Syntax msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok expr -> expr
  | Error msg -> invalid_arg ("Expr.parse_exn: " ^ msg)

let compare_values op (actual : string) (expected : value) =
  let numeric a b =
    match op with
    | Eq -> a = b
    | Neq -> a <> b
    | Ge -> a >= b
    | Le -> a <= b
    | Gt -> a > b
    | Lt -> a < b
  in
  match expected with
  | I i -> (
    match int_of_string_opt actual with Some a -> numeric a i | None -> op = Neq)
  | S s -> (
    match op with
    | Eq -> String.equal actual s
    | Neq -> not (String.equal actual s)
    | Ge | Le | Gt | Lt -> (
      (* Orderings on quoted values compare integers whenever both sides
         parse — otherwise '9' > '10' holds lexicographically. *)
      match (int_of_string_opt actual, int_of_string_opt s) with
      | Some a, Some b -> numeric a b
      | _ ->
        let c = String.compare actual s in
        (match op with
         | Ge -> c >= 0
         | Le -> c <= 0
         | Gt -> c > 0
         | Lt -> c < 0
         | Eq | Neq -> assert false)))

let holds = compare_values

let rec eval t ~props =
  match t with
  | True -> true
  | False -> false
  | And (a, b) -> eval a ~props && eval b ~props
  | Or (a, b) -> eval a ~props || eval b ~props
  | Not a -> not (eval a ~props)
  | Cmp (prop, op, expected) -> (
    match props prop with
    | Some actual -> compare_values op actual expected
    | None -> op = Neq)

let value_equal a b =
  match (a, b) with
  | S x, S y -> String.equal x y
  | I x, I y -> x = y
  | S _, I _ | I _, S _ -> false

let rec equal a b =
  match (a, b) with
  | True, True | False, False -> true
  | Cmp (pa, oa, va), Cmp (pb, ob, vb) ->
    String.equal pa pb && oa = ob && value_equal va vb
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
    equal a1 b1 && equal a2 b2
  | Not a, Not b -> equal a b
  | (True | False | Cmp _ | And _ | Or _ | Not _), _ -> false

let hash t = Hashtbl.hash t

let properties_used t =
  let rec collect acc = function
    | True | False -> acc
    | Cmp (prop, _, _) -> prop :: acc
    | And (a, b) | Or (a, b) -> collect (collect acc a) b
    | Not a -> collect acc a
  in
  List.sort_uniq String.compare (collect [] t)

let op_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Ge -> ">="
  | Le -> "<="
  | Gt -> ">"
  | Lt -> "<"

let rec to_string = function
  | True -> ""
  | False -> "false"
  | Cmp (prop, op, S s) -> Printf.sprintf "%s%s'%s'" prop (op_to_string op) s
  | Cmp (prop, op, I i) -> Printf.sprintf "%s%s%d" prop (op_to_string op) i
  | And (a, b) -> Printf.sprintf "(%s and %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "not %s" (to_string a)

(* ---- normalisation ------------------------------------------------------ *)

(* Negation-normal form, with one deliberate restriction: [Not] is kept on
   ordering comparisons.  [not (p > v)] is NOT equivalent to [p <= v] under
   OAR evaluation semantics — a missing property (or a non-integer value
   against an integer literal) makes *both* [p > v] and [p <= v] false, so
   the classical dual would be unsound.  [Not] does push through [And]/[Or]
   (De Morgan), double negation, and [Eq]/[Neq] (which are exact duals even
   for missing properties). *)
let rec push_not t =
  match t with
  | True | False | Cmp _ -> t
  | And (a, b) -> And (push_not a, push_not b)
  | Or (a, b) -> Or (push_not a, push_not b)
  | Not a -> negate a

and negate t =
  match t with
  | True -> False
  | False -> True
  | Not a -> push_not a
  | And (a, b) -> Or (negate a, negate b)
  | Or (a, b) -> And (negate a, negate b)
  | Cmp (p, Eq, v) -> Cmp (p, Neq, v)
  | Cmp (p, Neq, v) -> Cmp (p, Eq, v)
  | Cmp (_, (Ge | Le | Gt | Lt), _) as c -> Not c

let lit_prop = function
  | Cmp (p, _, _) | Not (Cmp (p, _, _)) -> Some p
  | _ -> None

(* [Eq va] and [Eq vb] on the same property can both hold only when a
   single concrete value satisfies both. *)
let eq_eq_compatible va vb =
  match (va, vb) with
  | S a, S b -> String.equal a b
  | I a, I b -> a = b
  | I a, S b | S b, I a -> (
    match int_of_string_opt b with Some x -> x = a | None -> false)

(* Integer interval implied by positive integer-literal comparisons.
   Every such literal forces the concrete value to parse as an integer,
   which is what makes folding negated orderings into the interval sound
   once at least one positive constraint is present. *)
type interval = { empty : bool; lo : int option; hi : int option }

let itv_top = { empty = false; lo = None; hi = None }

let itv_lo itv k =
  let lo = match itv.lo with None -> Some k | Some l -> Some (max l k) in
  { itv with lo }

let itv_hi itv k =
  let hi = match itv.hi with None -> Some k | Some h -> Some (min h k) in
  { itv with hi }

let itv_normalise itv =
  match (itv.lo, itv.hi) with
  | Some l, Some h when l > h -> { itv with empty = true }
  | _ -> itv

let itv_add itv op k =
  let itv =
    match op with
    | Eq -> itv_hi (itv_lo itv k) k
    | Ge -> itv_lo itv k
    | Gt -> if k = max_int then { itv with empty = true } else itv_lo itv (k + 1)
    | Le -> itv_hi itv k
    | Lt -> if k = min_int then { itv with empty = true } else itv_hi itv (k - 1)
    | Neq -> itv
  in
  itv_normalise itv

let itv_add_negated itv op k =
  match op with
  | Ge -> itv_add itv Lt k
  | Gt -> itv_add itv Le k
  | Le -> itv_add itv Gt k
  | Lt -> itv_add itv Ge k
  | Eq | Neq -> itv

(* Conjunction of all integer-literal constraints on one property is
   unsatisfiable?  Only positive literals force the value to parse, so
   negated orderings and [Neq] refine the interval only when at least one
   positive constraint exists. *)
let int_literals_unsat lits =
  let positives =
    List.filter_map
      (function Cmp (_, ((Eq | Ge | Gt | Le | Lt) as op), I k) -> Some (op, k) | _ -> None)
      lits
  in
  if positives = [] then false
  else begin
    let itv = List.fold_left (fun itv (op, k) -> itv_add itv op k) itv_top positives in
    let itv =
      List.fold_left
        (fun itv l ->
          match l with
          | Not (Cmp (_, op, I k)) -> itv_add_negated itv op k
          | _ -> itv)
        itv lits
    in
    let excluded k = List.exists (function Cmp (_, Neq, I x) -> x = k | _ -> false) lits in
    itv.empty
    || (match (itv.lo, itv.hi) with Some l, Some h -> l = h && excluded l | _ -> false)
  end

(* Lexicographic emptiness for a pair of ordering constraints on strings:
   conservative (strings are not densely ordered, so strict bounds with
   [lower >= upper] are the only pairs we call empty). *)
let str_pair_empty (op1, a) (op2, b) =
  let bound op s =
    match op with
    | Ge -> `Lo (s, false)
    | Gt -> `Lo (s, true)
    | Le -> `Hi (s, false)
    | Lt -> `Hi (s, true)
    | Eq | Neq -> `None
  in
  match (bound op1 a, bound op2 b) with
  | `Lo (l, sl), `Hi (h, sh) | `Hi (h, sh), `Lo (l, sl) ->
    let c = String.compare l h in
    if sl || sh then c >= 0 else c > 0
  | _ -> false

(* Can literals [l1] and [l2] (same property, both in restricted NNF) both
   hold for some concrete property state?  Conservative: [false] means
   "could not prove a contradiction". *)
let pair_contradicts l1 l2 =
  let structural_neg a b =
    match (a, b) with Not x, y | y, Not x -> equal x y | _ -> false
  in
  let eq_vs_other a b =
    (* [Cmp (p, Eq, S s)] pins the concrete string: evaluate the partner. *)
    match (a, b) with
    | Cmp (_, Eq, S s), Cmp (_, op, v) -> not (compare_values op s v)
    | Cmp (_, Eq, S s), Not (Cmp (_, op, v)) -> compare_values op s v
    | _ -> false
  in
  let eq_eq a b =
    match (a, b) with
    | Cmp (_, Eq, va), Cmp (_, Eq, vb) -> not (eq_eq_compatible va vb)
    | _ -> false
  in
  let eq_neq a b =
    match (a, b) with
    | Cmp (_, Eq, va), Cmp (_, Neq, vb) -> value_equal va vb
    | _ -> false
  in
  let str_ord l =
    (* Ordering whose payload does not parse as an integer compares
       lexicographically whatever the concrete value is. *)
    match l with
    | Cmp (_, ((Ge | Gt | Le | Lt) as op), S s) when int_of_string_opt s = None ->
      Some (op, s)
    | _ -> None
  in
  let str_str a b =
    match (str_ord a, str_ord b) with
    | Some ca, Some cb -> str_pair_empty ca cb
    | _ -> false
  in
  structural_neg l1 l2
  || eq_vs_other l1 l2 || eq_vs_other l2 l1
  || eq_eq l1 l2
  || eq_neq l1 l2 || eq_neq l2 l1
  || int_literals_unsat [ l1; l2 ]
  || str_str l1 l2

(* Is [l1 or l2] (same property) true for every concrete property state,
   including the missing-property one?  Conservative default: [false]. *)
let pair_tautology l1 l2 =
  let structural_neg a b =
    match (a, b) with Not x, y | y, Not x -> equal x y | _ -> false
  in
  let eq_neq a b =
    match (a, b) with
    | Cmp (_, Eq, va), Cmp (_, Neq, vb) | Cmp (_, Neq, vb), Cmp (_, Eq, va) ->
      value_equal va vb
    | _ -> false
  in
  let neq_neq a b =
    match (a, b) with
    | Cmp (_, Neq, va), Cmp (_, Neq, vb) -> not (eq_eq_compatible va vb)
    | _ -> false
  in
  structural_neg l1 l2 || eq_neq l1 l2 || neq_neq l1 l2

let same_prop l1 l2 =
  match (lit_prop l1, lit_prop l2) with
  | Some p, Some q -> String.equal p q
  | _ -> false

let rec exists_pair f = function
  | [] -> false
  | x :: tl -> List.exists (f x) tl || exists_pair f tl

let rec conjuncts t acc =
  match t with And (a, b) -> conjuncts a (conjuncts b acc) | x -> x :: acc

let rec disjuncts t acc =
  match t with Or (a, b) -> disjuncts a (disjuncts b acc) | x -> x :: acc

let dedup parts =
  let rec go seen = function
    | [] -> List.rev seen
    | x :: tl -> if List.exists (equal x) seen then go seen tl else go (x :: seen) tl
  in
  go [] parts

let rec rebuild_and = function
  | [] -> True
  | [ x ] -> x
  | x :: tl -> And (x, rebuild_and tl)

let rec rebuild_or = function
  | [] -> False
  | [ x ] -> x
  | x :: tl -> Or (x, rebuild_or tl)

let rec simplify t =
  match t with
  | True | False -> t
  | Cmp (_, Lt, S "") -> False (* no string sorts below the empty string *)
  | Cmp _ -> t
  | Not a -> (
    match simplify a with
    | True -> False
    | False -> True
    | Not b -> b
    | b -> Not b)
  | And _ ->
    let parts =
      conjuncts t [] |> List.map simplify
      |> List.concat_map (fun p -> conjuncts p [])
    in
    if List.exists (equal False) parts then False
    else begin
      let parts = List.filter (fun p -> not (equal True p)) parts |> dedup in
      if exists_pair (fun a b -> same_prop a b && pair_contradicts a b) parts then False
      else rebuild_and parts
    end
  | Or _ ->
    let parts =
      disjuncts t [] |> List.map simplify
      |> List.concat_map (fun p -> disjuncts p [])
    in
    if List.exists (equal True) parts then True
    else begin
      let parts = List.filter (fun p -> not (equal False p)) parts |> dedup in
      if exists_pair (fun a b -> same_prop a b && pair_tautology a b) parts then True
      else rebuild_or parts
    end

let normalize t = simplify (push_not t)
