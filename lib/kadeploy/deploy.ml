type node_outcome = Deployed | Failed of string

type result = {
  image : string;
  started_at : float;
  finished_at : float;
  outcomes : (string * node_outcome) list;
  retried : int;
}

let success_count r =
  List.length (List.filter (fun (_, o) -> o = Deployed) r.outcomes)

let all_deployed r = List.for_all (fun (_, o) -> o = Deployed) r.outcomes

let broadcast_duration ~nodes ~image_mb =
  (* Chain pipeline: fixed setup, transfer at ~1 Gbps effective, small
     per-hop pipeline latency — nearly flat in the node count. *)
  8.0 +. (12.0 *. float_of_int image_mb /. 1000.0) +. (0.06 *. float_of_int nodes)

let postinstall_duration ~image_mb = 20.0 +. (0.015 *. float_of_int image_mb)

let expected_duration ~nodes ~image_mb =
  120.0 (* mean reboot into deployment kernel *)
  +. broadcast_duration ~nodes ~image_mb
  +. postinstall_duration ~image_mb
  +. 120.0 (* mean reboot into the deployed environment *)

(* Per-node plan: how long the node takes after the broadcast phase, and
   how it ends. *)
type plan = {
  host : string;
  node : Testbed.Node.t;
  boot_a : float;  (* time to reach the deployment kernel, or failure *)
  a_ok : bool;
  mutable tail : float;  (* time after broadcast end *)
  mutable outcome : node_outcome;
  mutable retries : int;
}

let run instance ~registry ~image ~nodes ~on_done =
  let engine = instance.Testbed.Instance.engine in
  let now () = Simkit.Engine.now engine in
  let t0 = now () in
  match Image.get registry image with
  | None ->
    on_done
      {
        image;
        started_at = t0;
        finished_at = t0;
        outcomes = List.map (fun n -> (n.Testbed.Node.host, Failed "unknown image")) nodes;
        retried = 0;
      }
  | Some img ->
    let site =
      match nodes with [] -> None | n :: _ -> Some n.Testbed.Node.site_name
    in
    let service_ok =
      match site with
      | None -> true
      | Some site ->
        Testbed.Services.use instance.Testbed.Instance.services ~site
          Testbed.Services.Kadeploy
    in
    if not service_ok then
      on_done
        {
          image;
          started_at = t0;
          finished_at = t0;
          outcomes =
            List.map (fun n -> (n.Testbed.Node.host, Failed "kadeploy service unavailable")) nodes;
          retried = 0;
        }
    else begin
      let corrupt = Image.is_corrupt registry img in
      List.iter (fun n -> n.Testbed.Node.state <- Testbed.Node.Deploying) nodes;
      let plans =
        List.map
          (fun node ->
            (* Phase A: boot into the deployment kernel, one retry. *)
            let d1 = Testbed.Node.boot_duration node in
            let retries = ref 0 in
            let boot_a, a_ok =
              if not (Testbed.Node.boot_fails node) then (d1, true)
              else begin
                incr retries;
                let d2 = Testbed.Node.boot_duration node in
                if Testbed.Node.boot_fails node then (d1 +. d2, false)
                else (d1 +. d2, true)
              end
            in
            {
              host = node.Testbed.Node.host;
              node;
              boot_a;
              a_ok;
              tail = 0.0;
              outcome = (if a_ok then Deployed else Failed "deployment kernel boot failed");
              retries = !retries;
            })
          nodes
      in
      let survivors = List.filter (fun p -> p.a_ok) plans in
      let phase_a_end =
        List.fold_left (fun acc p -> Float.max acc p.boot_a) 0.0 survivors
      in
      let bcast =
        broadcast_duration ~nodes:(List.length survivors) ~image_mb:img.Image.size_mb
      in
      let post = postinstall_duration ~image_mb:img.Image.size_mb in
      (* Phases C+D per surviving node. *)
      List.iter
        (fun p ->
          let rng = p.node.Testbed.Node.rng in
          let glitch = Simkit.Prng.chance rng 0.008 in
          let write_time = if glitch then post +. 45.0 +. post else post in
          if glitch then p.retries <- p.retries + 1;
          if corrupt then begin
            p.tail <- write_time;
            p.outcome <- Failed "postinstall failed: image checksum mismatch"
          end
          else begin
            let d1 = Testbed.Node.boot_duration p.node in
            if not (Testbed.Node.boot_fails p.node) then begin
              p.tail <- write_time +. d1;
              p.outcome <- Deployed
            end
            else begin
              p.retries <- p.retries + 1;
              let d2 = Testbed.Node.boot_duration p.node in
              p.tail <- write_time +. d1 +. d2;
              if Testbed.Node.boot_fails p.node then
                p.outcome <- Failed "boot on deployed environment failed"
              else p.outcome <- Deployed
            end
          end)
        survivors;
      (* Materialise per-node completion events. *)
      let finish_of p =
        if p.a_ok then phase_a_end +. bcast +. p.tail else p.boot_a
      in
      let finished_at =
        List.fold_left (fun acc p -> Float.max acc (finish_of p)) 0.0 plans
      in
      List.iter
        (fun p ->
          ignore
            (Simkit.Engine.schedule engine ~label:"deploy" ~delay:(finish_of p) (fun _ ->
                 p.node.Testbed.Node.boot_count <- p.node.Testbed.Node.boot_count + 1;
                 match p.outcome with
                 | Deployed ->
                   p.node.Testbed.Node.state <- Testbed.Node.Alive;
                   p.node.Testbed.Node.deployed_env <- img.Image.name;
                   Testbed.Console.log_boot instance.Testbed.Instance.console p.node
                 | Failed reason ->
                   if
                     String.length reason >= 4
                     && (String.sub reason 0 4 = "boot" || String.sub reason 0 4 = "depl")
                   then p.node.Testbed.Node.state <- Testbed.Node.Down
                   else p.node.Testbed.Node.state <- Testbed.Node.Alive)))
        plans;
      let retried = List.fold_left (fun acc p -> acc + p.retries) 0 plans in
      ignore
        (Simkit.Engine.schedule engine ~label:"deploy" ~delay:(finished_at +. 1.0) (fun _ ->
             on_done
               {
                 image;
                 started_at = t0;
                 finished_at = t0 +. finished_at;
                 outcomes = List.map (fun p -> (p.host, p.outcome)) plans;
                 retried;
               }))
    end
