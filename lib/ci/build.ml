type result = Success | Unstable | Failure | Aborted | Not_built

type t = {
  job_name : string;
  number : int;
  axes : (string * string) list;
  cause : string;
  retry_of : int option;
  queued_at : float;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable result : result option;
  mutable log : string list;
  mutable artifacts : (string * string) list;
  mutable touched_hosts : string list;
}

let result_to_string = function
  | Success -> "SUCCESS"
  | Unstable -> "UNSTABLE"
  | Failure -> "FAILURE"
  | Aborted -> "ABORTED"
  | Not_built -> "NOT_BUILT"

let severity = function
  | Success -> 0
  | Not_built -> 1
  | Unstable -> 2
  | Aborted -> 3
  | Failure -> 4

let worse a b = if severity a >= severity b then a else b
let is_finished t = t.finished_at <> None

let duration t =
  match (t.started_at, t.finished_at) with
  | Some s, Some f -> Some (f -. s)
  | _ -> None

let append_log t line = t.log <- t.log @ [ line ]

let touch_hosts t hosts =
  t.touched_hosts <-
    t.touched_hosts @ List.filter (fun h -> not (List.mem h t.touched_hosts)) hosts

let attach_artifact t ~name content =
  t.artifacts <- (name, content) :: List.remove_assoc name t.artifacts

let artifact t name = List.assoc_opt name t.artifacts

let axes_to_string axes =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) axes)

let pp ppf t =
  Format.fprintf ppf "%s#%d%s [%s]%s" t.job_name t.number
    (match t.axes with [] -> "" | axes -> "(" ^ axes_to_string axes ^ ")")
    (match t.result with Some r -> result_to_string r | None -> "pending")
    (match t.retry_of with
     | Some n -> Printf.sprintf " (retry of #%d)" n
     | None -> "")
