(** The automation server (Jenkins substitute).

    Provides the benefits the paper lists for keeping Jenkins: a clean
    execution environment per build, a queue that controls overloading
    (bounded executor pool), access control for manual triggering, and
    long-term storage of build history and logs — plus the Matrix Project
    and Matrix Reloaded behaviours the framework relies on. *)

type t

type permission = Read | Trigger | Admin

type trigger_outcome =
  | Queued of int list  (** build numbers created (children for matrix jobs) *)
  | Not_found
  | Disabled
  | Denied  (** missing Trigger permission *)

val create : ?executors:int -> Simkit.Engine.t -> t
(** Default 6 executors. *)

val engine : t -> Simkit.Engine.t

val define : t -> Jobdef.t -> unit
(** Register (or replace) a job; cron triggers are armed immediately. *)

val job_names : t -> string list
val find_job : t -> string -> Jobdef.t option
val enable : t -> string -> unit
val disable : t -> string -> unit

val grant : t -> user:string -> permission -> unit
val permission_of : t -> user:string -> permission option

val trigger : t -> ?cause:string -> string -> trigger_outcome
(** System-initiated trigger (no permission check). *)

val trigger_as : t -> user:string -> string -> trigger_outcome
(** User-initiated trigger through the web interface. *)

val trigger_subset :
  t ->
  ?cause:string ->
  ?retry_of:int ->
  string ->
  axes:(string * string) list list ->
  trigger_outcome
(** Matrix Reloaded: run only the given combinations of a matrix job.
    [retry_of] records the lineage ({!Build.t.retry_of}) on every build
    created. *)

val retry_failed : t -> ?cause:string -> string -> trigger_outcome
(** Matrix Reloaded convenience: re-run every combination whose most
    recent build was not successful.  Each new build's [retry_of] links
    to the build it retries. *)

val builds : t -> string -> Build.t list
(** History, newest first, trimmed to the job's retention. *)

val build : t -> string -> int -> Build.t option
val last_build : t -> string -> Build.t option
val last_completed : t -> string -> Build.t option

val last_of_axes : t -> string -> axes:(string * string) list -> Build.t option
(** Most recent build of one matrix combination. *)

val queue_length : t -> int
val busy_executors : t -> int
val executors : t -> int
val builds_executed : t -> int

val on_build_complete : t -> (Build.t -> unit) -> unit
(** Register a listener fired whenever any build finishes. *)

val on_build_start : t -> (Build.t -> unit) -> unit
(** Register a listener fired when a build leaves the queue and starts
    executing (the resilience layer arms its watchdog here). *)

val abort_build : t -> Build.t -> unit
(** Mark a queued (not yet started) build {!Build.Aborted}. *)

(** {2 Degraded modes}

    The server survives its own infrastructure faults instead of
    crashing.  These switches are driven by the framework's resilience
    layer from the testbed fault flags. *)

val set_outage : t -> bool -> unit
(** Entering an outage pauses the executors: triggers are accepted and
    queue up (see {!deferred_triggers}).  Leaving it replays the whole
    queue. *)

val outage : t -> bool

val deferred_triggers : t -> int
(** Builds enqueued while in outage (replayed on recovery). *)

val set_hang : t -> bool -> unit
(** While set, builds that start never run their body — they occupy an
    executor until {!interrupt} (normally the watchdog) finishes them. *)

val interrupt : t -> Build.t -> bool
(** Abort a started, unfinished build: finishes it {!Build.Aborted}
    through the normal completion path (listeners fire, the executor is
    freed, the queue pumps).  [false] if the build is not running. *)

val drop_queue : t -> int
(** Queue-loss fault: wipe the pending queue, marking every queued build
    {!Build.Not_built} and notifying completion listeners so schedulers
    reschedule the lost work.  Returns the number of builds dropped. *)

val search_logs :
  ?limit:int -> t -> pattern:string -> (Build.t * string) list
(** Substring search over every retained build log (the paper's
    "long-term storage of results history and test logs" benefit):
    returns (build, matching line), capped at [limit] (default 200)
    hits, jobs in name order, each job newest build first. *)

val rest : t -> string -> (Simkit.Json.t, string) result
(** Minimal REST API: [/api/json] (jobs + queue), [/job/<name>/api/json]
    (recent builds), [/job/<name>/<number>/api/json] (one build). *)
