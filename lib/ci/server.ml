type permission = Read | Trigger | Admin

type trigger_outcome = Queued of int list | Not_found | Disabled | Denied

type pending = { job : Jobdef.t; build : Build.t }

type t = {
  engine : Simkit.Engine.t;
  jobs : (string, Jobdef.t) Hashtbl.t;
  mutable queue : pending list;  (* FIFO: head = next to run *)
  history : (string, Build.t list) Hashtbl.t;  (* newest first *)
  permissions : (string, permission) Hashtbl.t;
  n_executors : int;
  mutable busy : int;
  mutable next_number : (string, int) Hashtbl.t;
  mutable executed : int;
  mutable listeners : (Build.t -> unit) list;
  mutable start_listeners : (Build.t -> unit) list;
  (* Degraded modes driven by the resilience layer (infrastructure
     faults).  During an outage the executors pause: triggers keep
     queueing and are replayed when the outage clears.  While [hang] is
     set, started builds never run their body — only an external
     [interrupt] (the watchdog) finishes them. *)
  mutable in_outage : bool;
  mutable hang : bool;
  mutable deferred : int;  (* builds enqueued while in outage *)
  running : (string * int, Build.result -> unit) Hashtbl.t;
      (* started, unfinished builds -> their finish continuation *)
}

let create ?(executors = 6) engine =
  {
    engine;
    jobs = Hashtbl.create 32;
    queue = [];
    history = Hashtbl.create 32;
    permissions = Hashtbl.create 16;
    n_executors = executors;
    busy = 0;
    next_number = Hashtbl.create 32;
    executed = 0;
    listeners = [];
    start_listeners = [];
    in_outage = false;
    hang = false;
    deferred = 0;
    running = Hashtbl.create 16;
  }

let on_build_complete t f = t.listeners <- f :: t.listeners
let on_build_start t f = t.start_listeners <- f :: t.start_listeners

let engine t = t.engine
let now t = Simkit.Engine.now t.engine

let job_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.jobs [] |> List.sort String.compare

let find_job t name = Hashtbl.find_opt t.jobs name

let enable t name =
  match find_job t name with Some j -> j.Jobdef.enabled <- true | None -> ()

let disable t name =
  match find_job t name with Some j -> j.Jobdef.enabled <- false | None -> ()

let grant t ~user permission = Hashtbl.replace t.permissions user permission
let permission_of t ~user = Hashtbl.find_opt t.permissions user

let builds t name = Option.value ~default:[] (Hashtbl.find_opt t.history name)

let build t name number =
  List.find_opt (fun b -> b.Build.number = number) (builds t name)

let last_build t name = match builds t name with [] -> None | b :: _ -> Some b

let last_completed t name =
  List.find_opt Build.is_finished (builds t name)

let last_of_axes t name ~axes =
  List.find_opt (fun b -> b.Build.axes = axes) (builds t name)

let queue_length t = List.length t.queue
let busy_executors t = t.busy
let executors t = t.n_executors
let builds_executed t = t.executed

let fresh_number t name =
  let n = Option.value ~default:1 (Hashtbl.find_opt t.next_number name) in
  Hashtbl.replace t.next_number name (n + 1);
  n

let record t build =
  let job_name = build.Build.job_name in
  let retention =
    match find_job t job_name with Some j -> j.Jobdef.retention | None -> 200
  in
  let history = build :: builds t job_name in
  let trimmed = List.filteri (fun i _ -> i < retention) history in
  Hashtbl.replace t.history job_name trimmed

(* ---- executor pool ------------------------------------------------------ *)

let rec pump t =
  if t.busy < t.n_executors && not t.in_outage then begin
    match t.queue with
    | [] -> ()
    | { job; build } :: rest ->
      t.queue <- rest;
      if build.Build.result <> None then pump t
      else begin
        t.busy <- t.busy + 1;
        build.Build.started_at <- Some (now t);
        let key = (build.Build.job_name, build.Build.number) in
        let finished = ref false in
        let finish result =
          if not !finished then begin
            finished := true;
            Hashtbl.remove t.running key;
            build.Build.result <- Some result;
            build.Build.finished_at <- Some (now t);
            t.busy <- t.busy - 1;
            t.executed <- t.executed + 1;
            List.iter (fun f -> f build) t.listeners;
            pump t
          end
        in
        Hashtbl.replace t.running key finish;
        List.iter (fun f -> f build) t.start_listeners;
        if t.hang then begin
          (* Build_hang fault: the executor is consumed but the body
             never runs; only the watchdog's interrupt frees it. *)
          Build.append_log build "build hung (infrastructure fault)";
          pump t
        end
        else begin
          (try job.Jobdef.body ~engine:t.engine ~build ~finish
           with exn ->
             Build.append_log build ("executor exception: " ^ Printexc.to_string exn);
             finish Build.Failure);
          pump t
        end
      end
  end

let enqueue t job ?(retry_of = None) ~axes ~cause () =
  let build =
    {
      Build.job_name = job.Jobdef.name;
      number = fresh_number t job.Jobdef.name;
      axes;
      cause;
      retry_of;
      queued_at = now t;
      started_at = None;
      finished_at = None;
      result = None;
      log = [];
      artifacts = [];
      touched_hosts = [];
    }
  in
  record t build;
  if t.in_outage then begin
    t.deferred <- t.deferred + 1;
    Build.append_log build "queued during CI outage; will replay on recovery"
  end;
  t.queue <- t.queue @ [ { job; build } ];
  pump t;
  build

let trigger_combinations t job ?(retry_of = None) ~cause combos =
  let numbers =
    List.map (fun axes -> (enqueue t job ~retry_of ~axes ~cause ()).Build.number) combos
  in
  Queued numbers

let trigger t ?(cause = "system") name =
  match find_job t name with
  | None -> Not_found
  | Some job ->
    if not job.Jobdef.enabled then Disabled
    else begin
      match job.Jobdef.kind with
      | Jobdef.Freestyle -> trigger_combinations t job ~cause [ [] ]
      | Jobdef.Matrix axes -> trigger_combinations t job ~cause (Jobdef.combinations axes)
    end

let trigger_as t ~user name =
  match permission_of t ~user with
  | Some (Trigger | Admin) -> trigger t ~cause:("user:" ^ user) name
  | Some Read | None -> Denied

let trigger_subset t ?(cause = "matrix-reloaded") ?retry_of name ~axes =
  match find_job t name with
  | None -> Not_found
  | Some job ->
    if not job.Jobdef.enabled then Disabled
    else trigger_combinations t job ~retry_of ~cause axes

let retry_failed t ?(cause = "matrix-reloaded") name =
  match find_job t name with
  | None -> Not_found
  | Some job -> (
    match job.Jobdef.kind with
    | Jobdef.Freestyle -> (
      match last_completed t name with
      | Some b when b.Build.result <> Some Build.Success ->
        if not job.Jobdef.enabled then Disabled
        else
          Queued
            [ (enqueue t job ~retry_of:(Some b.Build.number) ~axes:[] ~cause ())
                .Build.number ]
      | _ -> Queued [])
    | Jobdef.Matrix axes ->
      let failed =
        Jobdef.combinations axes
        |> List.filter_map (fun combo ->
               match last_of_axes t name ~axes:combo with
               | Some b when Build.is_finished b && b.Build.result <> Some Build.Success
                 -> Some (combo, b.Build.number)
               | _ -> None)
      in
      if failed = [] then Queued []
      else if not job.Jobdef.enabled then Disabled
      else
        Queued
          (List.map
             (fun (combo, src) ->
               (enqueue t job ~retry_of:(Some src) ~axes:combo ~cause ()).Build.number)
             failed))

let abort_build t build =
  if build.Build.started_at = None && build.Build.result = None then begin
    build.Build.result <- Some Build.Aborted;
    build.Build.finished_at <- Some (now t)
  end

(* ---- degraded modes (infrastructure faults) ----------------------------- *)

let outage t = t.in_outage
let deferred_triggers t = t.deferred
let set_hang t hang = t.hang <- hang

let set_outage t down =
  if t.in_outage <> down then begin
    t.in_outage <- down;
    if not down then pump t  (* recovery: replay everything queued *)
  end

let interrupt t build =
  match Hashtbl.find_opt t.running (build.Build.job_name, build.Build.number) with
  | Some finish ->
    Build.append_log build "aborted: exceeded watchdog deadline";
    finish Build.Aborted;
    true
  | None -> false

let drop_queue t =
  let lost = t.queue in
  t.queue <- [];
  List.iter
    (fun { build; _ } ->
      if build.Build.result = None then begin
        Build.append_log build "lost: CI queue wiped (infrastructure fault)";
        build.Build.result <- Some Build.Not_built;
        build.Build.finished_at <- Some (now t);
        (* Notify listeners so schedulers reschedule the lost work. *)
        List.iter (fun f -> f build) t.listeners
      end)
    lost;
  List.length lost

(* ---- log search ---------------------------------------------------------- *)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec scan i = i + n <= m && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let search_logs ?(limit = 200) t ~pattern =
  let hits = ref [] in
  let count = ref 0 in
  List.iter
    (fun name ->
      List.iter
        (fun build ->
          List.iter
            (fun line ->
              if !count < limit && contains line pattern then begin
                incr count;
                hits := (build, line) :: !hits
              end)
            build.Build.log)
        (builds t name))
    (job_names t);
  List.rev !hits

(* ---- cron triggers ------------------------------------------------------ *)

let arm_cron t job cron =
  let rec arm after =
    let time = Cron.next_fire cron ~after in
    ignore
      (Simkit.Engine.schedule_at t.engine ~label:"ci-cron" ~time (fun _ ->
           let still_current =
             match Hashtbl.find_opt t.jobs job.Jobdef.name with
             | Some registered -> registered == job
             | None -> false
           in
           if job.Jobdef.enabled && still_current then
             ignore (trigger t ~cause:"timer" job.Jobdef.name);
           arm time))
  in
  arm (now t)

let define t job =
  Hashtbl.replace t.jobs job.Jobdef.name job;
  if not (Hashtbl.mem t.next_number job.Jobdef.name) then
    Hashtbl.replace t.next_number job.Jobdef.name 1;
  match job.Jobdef.trigger with Some cron -> arm_cron t job cron | None -> ()

(* ---- REST --------------------------------------------------------------- *)

let build_json b =
  let open Simkit.Json in
  Obj
    [ ("job", String b.Build.job_name);
      ("number", Int b.Build.number);
      ("axes", String (Build.axes_to_string b.Build.axes));
      ("cause", String b.Build.cause);
      ("queued_at", Float b.Build.queued_at);
      ( "result",
        match b.Build.result with
        | Some r -> String (Build.result_to_string r)
        | None -> Null );
      ( "duration",
        match Build.duration b with Some d -> Float d | None -> Null ) ]

let rest t path =
  let open Simkit.Json in
  let segments = String.split_on_char '/' path |> List.filter (( <> ) "") in
  match segments with
  | [ "api"; "json" ] ->
    Ok
      (Obj
         [ ("jobs", List (List.map (fun n -> String n) (job_names t)));
           ("queue_length", Int (queue_length t));
           ("busy_executors", Int t.busy);
           ("executors", Int t.n_executors) ])
  | [ "job"; name; "api"; "json" ] -> (
    match find_job t name with
    | None -> Error "no such job"
    | Some job ->
      Ok
        (Obj
           [ ("name", String name);
             ("enabled", Bool job.Jobdef.enabled);
             ("builds", List (List.map build_json (builds t name))) ]))
  | [ "job"; name; number; "api"; "json" ] -> (
    match int_of_string_opt number with
    | None -> Error "bad build number"
    | Some n -> (
      match build t name n with
      | None -> Error "no such build"
      | Some b -> Ok (build_json b)))
  | _ -> Error "no such endpoint"
