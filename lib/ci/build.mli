(** Build records, Jenkins-style.

    A build's [result] uses Jenkins' ordering: [Success] < [Unstable] <
    [Failure]; [Aborted]/[Not_built] are administrative.  "Unstable" is
    how the external scheduler marks builds whose testbed job could not
    be scheduled immediately. *)

type result = Success | Unstable | Failure | Aborted | Not_built

type t = {
  job_name : string;
  number : int;
  axes : (string * string) list;  (** matrix coordinates; [] for freestyle *)
  cause : string;  (** who/what triggered it *)
  retry_of : int option;
      (** Matrix-Reloaded lineage: the build number (same job) this
          build retries, [None] for first attempts *)
  queued_at : float;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable result : result option;  (** [None] while queued/running *)
  mutable log : string list;  (** oldest first *)
  mutable artifacts : (string * string) list;  (** name -> content *)
  mutable touched_hosts : string list;
      (** testbed hosts the build's job actually touched (reserved nodes);
          the health loop's blame channel — empty until the script runs *)
}

val result_to_string : result -> string

val worse : result -> result -> result
(** Jenkins severity max (for matrix parents). *)

val is_finished : t -> bool
val duration : t -> float option
val append_log : t -> string -> unit

val touch_hosts : t -> string list -> unit
(** Record hosts the build touched (union, first-seen order kept). *)

val attach_artifact : t -> name:string -> string -> unit
(** Store (or replace) a named artifact, e.g. a measurement CSV. *)

val artifact : t -> string -> string option

val axes_to_string : (string * string) list -> string
(** ["image=debian8,cluster=graphene"] (empty string for []). *)

val pp : Format.formatter -> t -> unit
(** ["job#12(axes) [FAILURE] (retry of #9)"] — the retry suffix shows
    the Matrix-Reloaded lineage chain. *)
