(* Benchmark and reproduction harness.

   One section per table/figure of the paper (E1..E10, see DESIGN.md),
   each regenerating the corresponding rows/series on the simulated
   testbed, followed by Bechamel micro-benchmarks of the underlying
   machinery.  EXPERIMENTS.md records paper-vs-measured for each. *)

let section id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "================================================================\n%!"

(* ---- E1: testbed inventory (slide 6) ------------------------------------- *)

let e1 () =
  section "E1" "testbed summary: 8 sites, 32 clusters, 894 nodes, 8490 cores";
  let rows =
    List.map
      (fun site ->
        let clusters = Testbed.Inventory.clusters_of_site site in
        let nodes = List.fold_left (fun acc c -> acc + c.Testbed.Inventory.nodes) 0 clusters in
        let cores =
          List.fold_left
            (fun acc c ->
              acc + (c.Testbed.Inventory.nodes * c.Testbed.Inventory.cpus
                     * c.Testbed.Inventory.cores_per_cpu))
            0 clusters
        in
        [ site; string_of_int (List.length clusters); string_of_int nodes;
          string_of_int cores ])
      Testbed.Inventory.sites
  in
  let total =
    [ "TOTAL"; string_of_int (List.length Testbed.Inventory.clusters);
      string_of_int Testbed.Inventory.total_nodes;
      string_of_int Testbed.Inventory.total_cores ]
  in
  print_string
    (Simkit.Table.render ~header:[ "site"; "clusters"; "nodes"; "cores" ] (rows @ [ total ]));
  Printf.printf "paper: 8 sites, 32 clusters, 894 nodes, 8490 cores\n"

(* ---- E2: g5k-checks detection (slide 7) ------------------------------------ *)

let e2 () =
  section "E2" "g5k-checks: verification of the testbed description";
  let t = Testbed.Instance.build ~seed:202L () in
  let faults = t.Testbed.Instance.faults in
  let drift_kinds =
    [ Testbed.Faults.Cpu_cstates; Testbed.Faults.Cpu_hyperthreading;
      Testbed.Faults.Cpu_turbo; Testbed.Faults.Cpu_governor;
      Testbed.Faults.Bios_drift; Testbed.Faults.Disk_firmware;
      Testbed.Faults.Disk_write_cache; Testbed.Faults.Ram_dimm_loss;
      Testbed.Faults.Refapi_desync; Testbed.Faults.Cabling_swap ]
  in
  (* Five faults of each drift class, randomly targeted. *)
  List.iter
    (fun kind ->
      for _ = 1 to 5 do
        ignore (Testbed.Faults.inject faults ~now:0.0 kind)
      done)
    drift_kinds;
  (* One boot-time sweep: g5k-checks on every node + cabling check. *)
  Array.iter
    (fun node ->
      let report = G5kchecks.Check.run t node in
      if not (G5kchecks.Check.conforms report) then
        List.iter
          (fun f -> Testbed.Faults.mark_detected faults ~now:1.0 f)
          (Testbed.Faults.active_on_host faults node.Testbed.Node.host);
      if
        not
          (Testbed.Network.cabling_consistent t.Testbed.Instance.network
             node.Testbed.Node.host)
      then
        List.iter
          (fun f ->
            if f.Testbed.Faults.kind = Testbed.Faults.Cabling_swap then
              Testbed.Faults.mark_detected faults ~now:1.0 f)
          (Testbed.Faults.active_on_host faults node.Testbed.Node.host))
    t.Testbed.Instance.nodes;
  let history = Testbed.Faults.history faults in
  let rows =
    List.map
      (fun kind ->
        let of_kind = List.filter (fun f -> f.Testbed.Faults.kind = kind) history in
        let detected =
          List.filter (fun f -> f.Testbed.Faults.detected_at <> None) of_kind
        in
        [ Testbed.Faults.kind_to_string kind;
          string_of_int (List.length of_kind);
          string_of_int (List.length detected);
          Simkit.Table.fmt_pct
            (float_of_int (List.length detected)
            /. float_of_int (Stdlib.max 1 (List.length of_kind))) ])
      drift_kinds
  in
  print_string
    (Simkit.Table.render ~header:[ "drift class"; "injected"; "detected"; "rate" ] rows);
  Printf.printf
    "paper: description errors \"could happen frequently\"; g5k-checks compares\n\
     OHAI/ethtool acquisition against the Reference API at every boot.\n"

(* ---- E3: Kadeploy scaling (slide 8) ------------------------------------------ *)

let e3 () =
  section "E3" "Kadeploy: 200 nodes deployed in ~5 minutes";
  let instance = Testbed.Instance.build ~seed:303L () in
  let registry =
    Kadeploy.Image.registry (Testbed.Faults.context instance.Testbed.Instance.faults)
  in
  let pool =
    Testbed.Instance.nodes_of_cluster instance "graphene"
    @ Testbed.Instance.nodes_of_cluster instance "griffon"
    @ Testbed.Instance.nodes_of_cluster instance "grisou"
    @ Testbed.Instance.nodes_of_cluster instance "paravance"
    @ Testbed.Instance.nodes_of_cluster instance "sagittaire"
  in
  let deploy nodes =
    let result = ref None in
    Kadeploy.Deploy.run instance ~registry ~image:"debian8-x64-std" ~nodes
      ~on_done:(fun r -> result := Some r);
    Simkit.Engine.run_until instance.Testbed.Instance.engine
      (Simkit.Engine.now instance.Testbed.Instance.engine +. 7200.0);
    Option.get !result
  in
  let rows =
    List.map
      (fun n ->
        let nodes = List.filteri (fun i _ -> i < n) pool in
        (* Mean of three repetitions. *)
        let times =
          List.init 3 (fun _ ->
              let r = deploy nodes in
              r.Kadeploy.Deploy.finished_at -. r.Kadeploy.Deploy.started_at)
        in
        let mean = List.fold_left ( +. ) 0.0 times /. 3.0 in
        let model =
          Kadeploy.Deploy.expected_duration ~nodes:n
            ~image_mb:Kadeploy.Image.std_env.Kadeploy.Image.size_mb
        in
        [ string_of_int n; Printf.sprintf "%.0f s" mean; Printf.sprintf "%.0f s" model ])
      [ 1; 2; 4; 8; 16; 32; 64; 128; 200; 256 ]
  in
  print_string (Simkit.Table.render ~header:[ "nodes"; "measured (mean of 3)"; "model" ] rows);
  Printf.printf "paper: \"200 nodes deployed in ~5 minutes\" (chain broadcast => flat).\n"

(* ---- E4: monitoring at 1 Hz (slide 9) ------------------------------------------ *)

let e4 () =
  section "E4" "experiment monitoring: infrastructure probes at ~1 Hz";
  let instance = Testbed.Instance.build ~seed:404L () in
  let collector = Monitoring.Collector.create instance in
  Simkit.Engine.run_until instance.Testbed.Instance.engine 120.0;
  let host = "taurus-1.lyon" in
  let rows =
    List.map
      (fun metric ->
        let series =
          Monitoring.Collector.sample_window collector ~host metric ~lo:60.0 ~hi:119.0
        in
        let hz = Monitoring.Collector.achieved_frequency_hz series ~lo:60.0 ~hi:119.0 in
        let mean = Simkit.Timeseries.mean_between series ~lo:60.0 ~hi:119.0 in
        [ Monitoring.Collector.metric_to_string metric;
          Printf.sprintf "%.2f Hz" hz;
          Simkit.Table.fmt_float mean;
          Simkit.Timeseries.sparkline series ~lo:60.0 ~hi:119.0 ~width:30 ])
      [ Monitoring.Collector.Cpu_load; Monitoring.Collector.Mem_used_gb;
        Monitoring.Collector.Net_rx_mbps; Monitoring.Collector.Power_w ]
  in
  print_string
    (Simkit.Table.render ~header:[ "metric"; "frequency"; "mean"; "live view (60 s)" ] rows);
  Printf.printf "paper: probes \"captured at high frequency (~1 Hz)\" with live\n\
                 visualisation, REST API and long-term storage.\n"

(* ---- E5: matrix jobs (slide 15) -------------------------------------------------- *)

let e5 () =
  section "E5" "Jenkins matrix: 14 images x 32 clusters = 448 configurations";
  let rows =
    List.map
      (fun family ->
        let axes = Framework.Testdef.matrix_axes family in
        [ "test_" ^ Framework.Testdef.family_to_string family;
          String.concat " x "
            (List.map (fun (a, vs) -> Printf.sprintf "%s(%d)" a (List.length vs)) axes);
          string_of_int (List.length (Framework.Testdef.expand family)) ])
      Framework.Testdef.all_families
  in
  print_string (Simkit.Table.render ~header:[ "job"; "axes"; "combinations" ] rows);
  (* Matrix Reloaded scenario: corrupt one image, run the matrix, retry
     only the failed subset. *)
  let env = Framework.Env.create ~seed:505L ~executors:16 () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let img = Kadeploy.Image.std_env in
  let fault =
    Option.get
      (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
         Testbed.Faults.Env_image_corrupt
         (Testbed.Faults.Global (Printf.sprintf "env_corrupt:%d" img.Kadeploy.Image.index)))
  in
  ignore (Ci.Server.trigger env.Framework.Env.ci "test_environments");
  Framework.Env.run_until env (6.0 *. Simkit.Calendar.day);
  let count result =
    List.length
      (List.filter
         (fun b -> b.Ci.Build.result = Some result)
         (Ci.Server.builds env.Framework.Env.ci "test_environments"))
  in
  Printf.printf "full matrix run : %d SUCCESS, %d FAILURE (image %s corrupt)\n"
    (count Ci.Build.Success) (count Ci.Build.Failure) img.Kadeploy.Image.name;
  Testbed.Faults.repair (Framework.Env.faults env) ~now:(Framework.Env.now env) fault;
  (match Ci.Server.retry_failed env.Framework.Env.ci "test_environments" with
   | Ci.Server.Queued builds ->
     Printf.printf "matrix reloaded : re-ran %d failed combination(s) after the fix\n"
       (List.length builds)
   | _ -> ());
  Framework.Env.run_until env (Framework.Env.now env +. (2.0 *. Simkit.Calendar.day));
  let still_failing =
    Ci.Jobdef.combinations (Framework.Testdef.matrix_axes Framework.Testdef.Environments)
    |> List.filter (fun axes ->
           match Ci.Server.last_of_axes env.Framework.Env.ci "test_environments" ~axes with
           | Some b -> b.Ci.Build.result <> Some Ci.Build.Success
           | None -> true)
  in
  Printf.printf "after retry     : %d combination(s) still failing\n"
    (List.length still_failing)

(* ---- E6: job scheduling policies (slides 16-17) ------------------------------------ *)

let e6 () =
  section "E6" "external scheduler vs naive time-based triggering";
  let run policy =
    Framework.Campaign.run
      { Framework.Campaign.default_config with
        Framework.Campaign.months = 1;
        seed = 606L;
        policy;
      }
  in
  let report_row name report =
    match report.Framework.Campaign.scheduler_stats with
    | None -> [ name; "-"; "-"; "-"; "-"; "-"; "-" ]
    | Some s ->
      let completed =
        s.Framework.Scheduler.completed_success + s.Framework.Scheduler.completed_failure
        + s.Framework.Scheduler.completed_unstable
      in
      [ name;
        string_of_int s.Framework.Scheduler.triggered;
        Simkit.Table.fmt_pct
          (float_of_int s.Framework.Scheduler.completed_success
          /. float_of_int (Stdlib.max 1 completed));
        string_of_int s.Framework.Scheduler.completed_unstable;
        Simkit.Table.fmt_pct
          (float_of_int s.Framework.Scheduler.completed_unstable
          /. float_of_int (Stdlib.max 1 completed));
        string_of_int s.Framework.Scheduler.skipped_no_resources;
        string_of_int s.Framework.Scheduler.skipped_peak ]
  in
  let smart = run Framework.Scheduler.smart_policy in
  let naive = run Framework.Scheduler.naive_policy in
  print_string
    (Simkit.Table.render
       ~header:
         [ "policy"; "triggered"; "success"; "unstable"; "unstable%";
           "skips(no-res)"; "skips(peak)" ]
       [ report_row "smart (paper)" smart; report_row "naive (baseline)" naive ]);
  (* Peak-hour pollution: builds that consumed testbed nodes during user
     working hours. *)
  let peak_violations report =
    ignore report;
    0
  in
  ignore peak_violations;
  Printf.printf
    "paper: the external tool submits only when resources are available, with\n\
     exponential backoff, peak-hours avoidance and same-site anti-affinity;\n\
     jobs not schedulable immediately are cancelled => build marked UNSTABLE.\n"

(* ---- E7: status page (slides 18-19) -------------------------------------------------- *)

let e7 () =
  section "E7" "status page: per-test / per-cluster / historical views";
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with Framework.Campaign.months = 1; seed = 707L }
  in
  print_string report.Framework.Campaign.statuspage

(* ---- E8: coverage (slide 21) ---------------------------------------------------------- *)

let e8 () =
  section "E8" "test coverage: 751 configurations";
  let rows =
    List.map
      (fun family ->
        [ Framework.Testdef.family_to_string family;
          Framework.Testdef.category family;
          (if Framework.Testdef.is_hardware_centric family then "hardware-centric"
           else "software-centric");
          string_of_int (List.length (Framework.Testdef.expand family)) ])
      Framework.Testdef.all_families
  in
  print_string
    (Simkit.Table.render ~header:[ "test"; "category"; "kind"; "configurations" ]
       (rows
       @ [ [ "TOTAL"; ""; ""; string_of_int (Framework.Jobs.total_configurations ()) ] ]));
  Printf.printf "paper: \"Coverage (total of 751 test configurations)\".\n"

(* ---- E9: bugs filed/fixed (slide 22) --------------------------------------------------- *)

let e9 () =
  section "E9" "results: bugs filed and fixed over a 6-month campaign";
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with Framework.Campaign.months = 6; seed = 42L }
  in
  print_string
    (Simkit.Table.render ~header:[ "category"; "filed"; "fixed" ]
       (List.map
          (fun (category, filed, fixed) ->
            [ category; string_of_int filed; string_of_int fixed ])
          report.Framework.Campaign.bugs_by_category
       @ [ [ "TOTAL"; string_of_int report.Framework.Campaign.bugs_filed;
             string_of_int report.Framework.Campaign.bugs_fixed ] ]));
  Printf.printf "paper: 118 bugs filed, 84 already fixed at submission time.\n";
  Printf.printf
    "ground truth: %d faults injected, %d detected by tests, %d repaired.\n"
    report.Framework.Campaign.faults_injected report.Framework.Campaign.faults_detected
    report.Framework.Campaign.faults_repaired

(* ---- E10: reliability trend (slide 23) --------------------------------------------------- *)

let e10 () =
  section "E10" "reliability: success rate improves while tests are added";
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with Framework.Campaign.months = 12; seed = 42L }
  in
  print_string
    (Simkit.Table.render
       ~header:[ "month"; "builds"; "success"; "configs enabled"; "active faults" ]
       (List.map
          (fun m ->
            [ string_of_int m.Framework.Campaign.month;
              string_of_int m.Framework.Campaign.builds;
              Simkit.Table.fmt_pct m.Framework.Campaign.success_ratio;
              string_of_int m.Framework.Campaign.enabled_configs;
              string_of_int m.Framework.Campaign.active_faults ])
          report.Framework.Campaign.monthly));
  Printf.printf
    "paper: \"85%% of tests successful in February => 93%% today, despite the\n\
     addition of new tests\" (disk+kavlan added month 2; kwapi+mpigraph month 4).\n"

(* ---- Ablations: the design choices DESIGN.md calls out ---------------------------------- *)

(* A1: the paper's open question — whole-cluster vs per-node scheduling of
   hardware-centric tests. *)
let a1 () =
  section "A1" "ablation: whole-cluster vs per-node scheduling (open question)";
  let run strategy =
    let instance = Testbed.Instance.build ~seed:111L () in
    let oar = Oar.Manager.create instance in
    let env =
      { Framework.Env.instance; oar;
        registry =
          Kadeploy.Image.registry (Testbed.Faults.context instance.Testbed.Instance.faults);
        collector = Monitoring.Collector.create instance;
        ci = Ci.Server.create instance.Testbed.Instance.engine;
        trace = Simkit.Tracelog.create () }
    in
    let engine = instance.Testbed.Instance.engine in
    let rng = Simkit.Prng.split (Simkit.Engine.rng engine) in
    (* A dedicated heavy stream of small jobs on genepi keeps the cluster
       ~full with staggered reservations — the paper's "waiting for all
       nodes of a given cluster to be available can take weeks" regime. *)
    let in_flight = ref 0 in
    Oar.Manager.on_job_end oar (fun _ -> decr in_flight);
    Simkit.Engine.every engine ~period:300.0 (fun _ ->
        if !in_flight < 60 then begin
          let nodes = `N (Simkit.Prng.int_in rng 1 6) in
          let walltime =
            Float.min (12.0 *. 3600.0)
              (Simkit.Dist.sample rng (Simkit.Dist.Lognormal (8.8, 0.8)))
          in
          match
            Oar.Manager.submit oar ~user:"heavy-user"
              ~duration:(walltime *. (0.6 +. (0.4 *. Simkit.Prng.float rng)))
              (Oar.Request.nodes ~filter:"cluster='genepi'" nodes ~walltime)
          with
          | Ok _ -> incr in_flight
          | Error _ -> ()
        end;
        true);
    let tracker =
      Framework.Pernode.create ~walltime:900.0 env ~strategy ~cluster:"genepi"
    in
    Framework.Pernode.start tracker ~period:600.0;
    Simkit.Engine.run_until engine (30.0 *. Simkit.Calendar.day);
    tracker
  in
  let whole = run Framework.Pernode.Whole_cluster in
  let per_node = run Framework.Pernode.Per_node in
  let row name tracker =
    let sweeps = Framework.Pernode.completed_sweeps tracker in
    [ name;
      (match Framework.Pernode.time_to_coverage tracker with
       | Some d -> Printf.sprintf "%.1f days" (d /. Simkit.Calendar.day)
       | None -> "never (30-day horizon)");
      string_of_int (List.length sweeps);
      (match sweeps with
       | [] -> "-"
       | _ ->
         let runs =
           List.fold_left
             (fun acc s -> acc + s.Framework.Pernode.partial_runs)
             0 sweeps
         in
         Printf.sprintf "%.1f" (float_of_int runs /. float_of_int (List.length sweeps))) ]
  in
  print_string
    (Simkit.Table.render
       ~header:
         [ "strategy"; "first full coverage"; "sweeps in 30 days"; "reservations/sweep" ]
       [ row "whole-cluster (paper)" whole; row "per-node (proposed)" per_node ]);
  Printf.printf
    "paper: \"requiring the availability of all nodes of a cluster is not very\n\
     realistic. Move to per-node scheduling?\" — per-node coverage completes even\n\
     when the cluster is never simultaneously free.\n"

(* A2/A3: scheduler policy knobs, one at a time. *)
let a2_a3 () =
  section "A2/A3" "ablation: exponential backoff and peak-hours avoidance";
  let run policy seed =
    Framework.Campaign.run
      { Framework.Campaign.default_config with
        Framework.Campaign.months = 1;
        seed;
        policy;
      }
  in
  let base = Framework.Scheduler.smart_policy in
  let variants =
    [ ("smart (all policies)", base);
      ("no backoff", { base with Framework.Scheduler.use_backoff = false });
      ("no peak avoidance", { base with Framework.Scheduler.avoid_peak_hours = false });
      ("no site anti-affinity", { base with Framework.Scheduler.one_job_per_site = false }) ]
  in
  let peak_builds report =
    ignore report;
    ()
  in
  ignore peak_builds;
  let rows =
    List.map
      (fun (name, policy) ->
        let report = run policy 222L in
        match report.Framework.Campaign.scheduler_stats with
        | None -> [ name; "-"; "-"; "-"; "-" ]
        | Some s ->
          let completed =
            s.Framework.Scheduler.completed_success
            + s.Framework.Scheduler.completed_failure
            + s.Framework.Scheduler.completed_unstable
          in
          [ name;
            string_of_int s.Framework.Scheduler.triggered;
            Simkit.Table.fmt_pct
              (float_of_int s.Framework.Scheduler.completed_success
              /. float_of_int (Stdlib.max 1 completed));
            string_of_int s.Framework.Scheduler.completed_unstable;
            string_of_int s.Framework.Scheduler.skipped_no_resources ])
      variants
  in
  print_string
    (Simkit.Table.render
       ~header:[ "policy variant"; "triggered"; "success"; "unstable"; "skips(no-res)" ]
       rows)

(* A4: operator capacity sensitivity — how fast do bugs need fixing for the
   93% regime? *)
let a4 () =
  section "A4" "ablation: operator fix capacity vs reliability";
  let rows =
    List.map
      (fun capacity ->
        let report =
          Framework.Campaign.run
            { Framework.Campaign.default_config with
              Framework.Campaign.months = 2;
              seed = 333L;
              operator =
                { Framework.Operator.default_config with
                  Framework.Operator.fix_capacity_per_day = capacity;
                };
            }
        in
        let last_month =
          List.nth report.Framework.Campaign.monthly
            (List.length report.Framework.Campaign.monthly - 1)
        in
        [ Printf.sprintf "%.2f bugs/day" capacity;
          string_of_int report.Framework.Campaign.bugs_filed;
          string_of_int report.Framework.Campaign.bugs_fixed;
          Simkit.Table.fmt_pct last_month.Framework.Campaign.success_ratio;
          string_of_int last_month.Framework.Campaign.active_faults ])
      [ 0.15; 0.35; 0.72; 1.5; 3.0 ]
  in
  print_string
    (Simkit.Table.render
       ~header:[ "fix capacity"; "filed"; "fixed"; "success (month 2)"; "active faults" ]
       rows);
  Printf.printf "the \"test-driven operations\" regime needs fixing to keep up with arrivals.\n"

(* A5: detection latency per fault category. *)
let a5 () =
  section "A5" "detection latency by fault category (ground truth)";
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with Framework.Campaign.months = 2; seed = 42L }
  in
  print_string
    (Simkit.Table.render ~header:[ "fault category"; "mean detection latency"; "detections" ]
       (List.map
          (fun (category, days, n) ->
            [ category; Printf.sprintf "%.1f days" days; string_of_int n ])
          report.Framework.Campaign.detection_latency_days));
  Printf.printf
    "description drift is caught within a day (refapi runs daily); whole-cluster\n\
     hardware tests take longer — they wait for the resources (E6, A1).\n"

(* A6: user-experiment regression tests (future work made real). *)
let a6 () =
  section "A6" "extension: user experiments as regression tests";
  let env = Framework.Env.create ~seed:444L () in
  let tracker = Framework.Bugtracker.create () in
  Framework.Regression.define_jobs env ~on_evidence:(fun evidence ->
      ignore (Framework.Bugtracker.file tracker ~now:(Framework.Env.now env) evidence));
  (* Break things a user would notice — on every candidate target, so the
     experiments' reservations cannot dodge the faults. *)
  List.iter
    (fun spec ->
      if spec.Testbed.Inventory.has_ib then
        ignore
          (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
             Testbed.Faults.Ofed_flaky
             (Testbed.Faults.Cluster spec.Testbed.Inventory.cluster)))
    Testbed.Inventory.clusters;
  List.iter
    (fun cluster ->
      let rec swap_pairs = function
        | a :: b :: rest ->
          ignore
            (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
               Testbed.Faults.Cabling_swap
               (Testbed.Faults.Host_pair (a.Testbed.Node.host, b.Testbed.Node.host)));
          swap_pairs rest
        | _ -> ()
      in
      swap_pairs (Testbed.Instance.nodes_of_cluster env.Framework.Env.instance cluster))
    [ "grisou"; "graphene"; "griffon"; "graphite"; "grimoire"; "graoully"; "grele";
      "grimani" ];
  (* Several rounds: the OFED failure is probabilistic. *)
  for _ = 1 to 4 do
    List.iter
      (fun experiment ->
        ignore
          (Ci.Server.trigger env.Framework.Env.ci
             ("regression_" ^ Framework.Regression.name experiment)))
      Framework.Regression.all;
    Framework.Env.run_until env (Framework.Env.now env +. (6.0 *. Simkit.Calendar.hour))
  done;
  List.iter
    (fun experiment ->
      let job = "regression_" ^ Framework.Regression.name experiment in
      let completed =
        List.filter Ci.Build.is_finished (Ci.Server.builds env.Framework.Env.ci job)
      in
      let failures =
        List.length
          (List.filter (fun b -> b.Ci.Build.result = Some Ci.Build.Failure) completed)
      in
      Printf.printf "  %-28s %d run(s), %d failure(s)\n" job (List.length completed)
        failures)
    Framework.Regression.all;
  let filed, _ = Framework.Bugtracker.counts tracker in
  Printf.printf "bugs filed by regression experiments: %d\n" filed;
  Printf.printf "paper: \"adding real user experiments as regression tests?\" — done.\n"

(* ---- E11: resilience under infrastructure faults ---------------------------------------- *)

(* Chaos campaign: CI outage, hung builds and a queue wipe injected
   mid-campaign, with the resilience layer (watchdogs, breakers, retry
   budgets) switched on.  Emits the resilience summary as JSON so the
   run can be diffed/tracked; [--scenario resilience] runs only this. *)
let e11_resilience () =
  section "E11" "resilience: chaos campaign (CI outage, hung builds, queue loss)";
  let day = Simkit.Calendar.day in
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with
        Framework.Campaign.months = 2;
        seed = 1111L;
        resilience = true;
        infra_faults =
          [ (5.0 *. day, Testbed.Faults.Ci_outage);
            (12.0 *. day, Testbed.Faults.Build_hang);
            (20.0 *. day, Testbed.Faults.Queue_loss);
            (33.0 *. day, Testbed.Faults.Build_hang);
            (45.0 *. day, Testbed.Faults.Ci_outage) ];
        policy =
          { Framework.Scheduler.smart_policy with
            Framework.Scheduler.retry_budget = 6;
            backoff_jitter = 0.3;
            breaker = Some Framework.Resilience.Breaker.default;
          };
      }
  in
  (match report.Framework.Campaign.scheduler_stats with
   | Some s ->
     Printf.printf
       "campaign completed: %d builds, %d triggered, %d retries spent, %d \
        breaker trips\n"
       report.Framework.Campaign.builds_total s.Framework.Scheduler.triggered
       s.Framework.Scheduler.retries_spent s.Framework.Scheduler.breaker_trips
   | None -> ());
  match report.Framework.Campaign.resilience with
  | Some summary ->
    print_endline
      (Simkit.Json.to_string ~indent:2
         (Framework.Resilience.summary_to_json summary))
  | None -> print_endline "(resilience layer was not attached)"

(* ---- E12: scheduler hot path (due-queue vs linear scan) --------------------------------- *)

(* The external scheduler polls every 10 minutes over 751 configurations.
   The due-queue rewrite makes a poll O(due) instead of re-sorting and
   re-scanning the whole catalog; this scenario measures both paths on
   the full catalog — a week-long campaign end-to-end, then the
   steady-state per-poll cost — and writes BENCH_scheduler.json.
   [--scenario scheduler] runs only this. *)
let e12_scheduler () =
  section "E12" "scheduler hot path: due-queue vs full-catalog linear scan";
  let day = Simkit.Calendar.day in
  let horizon = 7.0 *. day in
  (* A full-catalog week: all 16 families (751 configurations) driven by
     the engine exactly as in a campaign. *)
  let campaign ~indexed =
    let env = Framework.Env.create ~seed:1212L () in
    Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
    let s = Framework.Scheduler.create ~indexed env in
    List.iter (Framework.Scheduler.enable_family s) Framework.Testdef.all_families;
    Framework.Scheduler.start s;
    let t0 = Unix.gettimeofday () in
    Framework.Env.run_until env horizon;
    let wall = Unix.gettimeofday () -. t0 in
    (Framework.Scheduler.stats s, wall)
  in
  let stats_idx, wall_idx = campaign ~indexed:true in
  let stats_lin, wall_lin = campaign ~indexed:false in
  if stats_idx <> stats_lin then
    print_endline "WARNING: indexed and linear campaigns disagree on stats!";
  Printf.printf "week-long 751-config campaign (%d polls, %d builds triggered):\n"
    stats_idx.Framework.Scheduler.polls stats_idx.Framework.Scheduler.triggered;
  Printf.printf "  indexed  %.2f s wall (%.0f polls/s)\n" wall_idx
    (float_of_int stats_idx.Framework.Scheduler.polls /. wall_idx);
  Printf.printf "  linear   %.2f s wall (%.0f polls/s)\n" wall_lin
    (float_of_int stats_lin.Framework.Scheduler.polls /. wall_lin);
  (* Steady-state per-poll cost: a scheduler loaded with the staggered
     catalog, polled at an instant where nothing is due — the common
     case the poll loop hits every 10 minutes.  The linear path still
     rebuilds the busy table and sorts all 751 entries; the indexed path
     peeks the heap top. *)
  let quiet_scheduler ~indexed =
    let env = Framework.Env.create ~seed:3434L () in
    Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
    let s = Framework.Scheduler.create ~indexed env in
    List.iter (Framework.Scheduler.enable_family s) Framework.Testdef.all_families;
    s
  in
  let per_poll s =
    let reps = 20_000 in
    for _ = 1 to 100 do Framework.Scheduler.poll s done;
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do Framework.Scheduler.poll s done;
    let dt = Unix.gettimeofday () -. t0 in
    let alloc = (Gc.allocated_bytes () -. a0) /. float_of_int reps in
    (dt /. float_of_int reps *. 1e9, alloc)
  in
  let ns_idx, alloc_idx = per_poll (quiet_scheduler ~indexed:true) in
  let ns_lin, alloc_lin = per_poll (quiet_scheduler ~indexed:false) in
  let speedup = ns_lin /. ns_idx in
  Printf.printf "steady-state poll over 751 configurations (nothing due):\n";
  Printf.printf "  indexed  %10.1f ns/poll  %10.1f B alloc/poll\n" ns_idx alloc_idx;
  Printf.printf "  linear   %10.1f ns/poll  %10.1f B alloc/poll\n" ns_lin alloc_lin;
  Printf.printf "  per-poll speedup: %.1fx %s\n" speedup
    (if speedup >= 5.0 then "(target >= 5x: OK)" else "(target >= 5x: MISSED)");
  let json =
    let open Simkit.Json in
    Obj
      [ ("configurations", Int (Framework.Jobs.total_configurations ()));
        ("horizon_days", Float (horizon /. day));
        ( "campaign",
          Obj
            [ ("polls", Int stats_idx.Framework.Scheduler.polls);
              ("triggered", Int stats_idx.Framework.Scheduler.triggered);
              ("stats_match_linear", Bool (stats_idx = stats_lin));
              ("indexed_wall_s", Float wall_idx);
              ("linear_wall_s", Float wall_lin);
              ( "indexed_polls_per_s",
                Float (float_of_int stats_idx.Framework.Scheduler.polls /. wall_idx) );
              ( "linear_polls_per_s",
                Float (float_of_int stats_lin.Framework.Scheduler.polls /. wall_lin) ) ] );
        ( "steady_state_poll",
          Obj
            [ ("indexed_ns", Float ns_idx);
              ("linear_ns", Float ns_lin);
              ("indexed_alloc_bytes", Float alloc_idx);
              ("linear_alloc_bytes", Float alloc_lin);
              ("speedup", Float speedup) ] ) ]
  in
  let text = Simkit.Json.to_string ~indent:2 json in
  let oc = open_out "BENCH_scheduler.json" in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  print_endline text;
  print_endline "written to BENCH_scheduler.json"

(* ---- E13: self-healing loop under correlated faults ------------------------------------- *)

(* A week-long full-catalog run with a PDU failure, a site outage and a
   network partition landing mid-week.  None of them is auto-repaired:
   with the health loop off the affected nodes stay dark for the rest of
   the week; with it on they are quarantined, repaired and re-verified.
   Compares the success ratio and scheduler throughput of both runs,
   then measures the probe's per-poll overhead, and writes
   BENCH_health.json.  [--scenario health] runs only this. *)
let e13_health () =
  section "E13" "self-healing: health loop off vs on under correlated faults";
  let day = Simkit.Calendar.day in
  let horizon = 7.0 *. day in
  let drills =
    [ (1.0 *. day, Testbed.Faults.Pdu_failure, Testbed.Faults.Rack ("grisou", 0));
      (2.0 *. day, Testbed.Faults.Site_outage, Testbed.Faults.Site "nancy");
      (4.0 *. day, Testbed.Faults.Network_partition, Testbed.Faults.Site "rennes") ]
  in
  let run ~loop =
    let env = Framework.Env.create ~seed:1313L () in
    Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
    let s = Framework.Scheduler.create env in
    List.iter (Framework.Scheduler.enable_family s) Framework.Testdef.all_families;
    let health =
      if loop then
        Some
          (Framework.Health.attach ~scheduler:s
             ~alerts:(Monitoring.Alerts.create env.Framework.Env.collector)
             env)
      else None
    in
    let faults = Framework.Env.faults env in
    List.iter
      (fun (at, kind, target) ->
        ignore
          (Simkit.Engine.schedule_at (Framework.Env.engine env) ~time:at
             (fun eng ->
               ignore
                 (Testbed.Faults.inject_on faults ~now:(Simkit.Engine.now eng)
                    kind target))))
      drills;
    Framework.Scheduler.start s;
    let t0 = Unix.gettimeofday () in
    Framework.Env.run_until env horizon;
    let wall = Unix.gettimeofday () -. t0 in
    (Framework.Scheduler.stats s, Option.map Framework.Health.summary health, wall)
  in
  let stats_off, _, wall_off = run ~loop:false in
  let stats_on, health_on, wall_on = run ~loop:true in
  let completed (s : Framework.Scheduler.stats) =
    s.Framework.Scheduler.completed_success + s.Framework.Scheduler.completed_failure
    + s.Framework.Scheduler.completed_unstable
  in
  let ratio (s : Framework.Scheduler.stats) =
    float_of_int s.Framework.Scheduler.completed_success
    /. float_of_int (Stdlib.max 1 (completed s))
  in
  let row name (s : Framework.Scheduler.stats) =
    [ name; string_of_int s.Framework.Scheduler.triggered;
      string_of_int (completed s); Simkit.Table.fmt_pct (ratio s);
      string_of_int s.Framework.Scheduler.completed_unstable;
      string_of_int s.Framework.Scheduler.skipped_no_resources;
      string_of_int s.Framework.Scheduler.skipped_quarantined ]
  in
  print_string
    (Simkit.Table.render
       ~header:
         [ "health loop"; "triggered"; "completed"; "success"; "unstable";
           "skips(no-res)"; "skips(quarantine)" ]
       [ row "off" stats_off; row "on" stats_on ]);
  (match health_on with
   | Some h ->
     Printf.printf
       "loop on: %d quarantined, %d repair attempts, %d released, %d retired, \
        mean %.1f h to release, %d alerts\n"
       h.Framework.Health.quarantined h.Framework.Health.repair_attempts
       h.Framework.Health.released h.Framework.Health.retired
       h.Framework.Health.mean_hours_to_release h.Framework.Health.alerts_fired
   | None -> ());
  Printf.printf "success ratio: %s (off) -> %s (on)\n"
    (Simkit.Table.fmt_pct (ratio stats_off))
    (Simkit.Table.fmt_pct (ratio stats_on));
  (* Per-poll overhead of the quarantine probe on a quiet scheduler: the
     probe only runs when a configuration fails its precheck, so the
     steady-state poll cost should be unchanged to the noise floor. *)
  let quiet ~loop =
    let env = Framework.Env.create ~seed:3535L () in
    Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
    let s = Framework.Scheduler.create env in
    List.iter (Framework.Scheduler.enable_family s) Framework.Testdef.all_families;
    if loop then ignore (Framework.Health.attach ~scheduler:s env);
    s
  in
  let per_poll s =
    let reps = 20_000 in
    for _ = 1 to 100 do Framework.Scheduler.poll s done;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do Framework.Scheduler.poll s done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e9
  in
  let ns_off = per_poll (quiet ~loop:false) in
  let ns_on = per_poll (quiet ~loop:true) in
  Printf.printf "steady-state poll: %.1f ns without probe, %.1f ns with probe\n"
    ns_off ns_on;
  let json =
    let open Simkit.Json in
    let scheduler_json (s : Framework.Scheduler.stats) wall =
      Obj
        [ ("polls", Int s.Framework.Scheduler.polls);
          ("triggered", Int s.Framework.Scheduler.triggered);
          ("completed", Int (completed s));
          ("success_ratio", Float (ratio s));
          ("unstable", Int s.Framework.Scheduler.completed_unstable);
          ("skipped_no_resources", Int s.Framework.Scheduler.skipped_no_resources);
          ("skipped_quarantined", Int s.Framework.Scheduler.skipped_quarantined);
          ("wall_s", Float wall) ]
    in
    Obj
      [ ("horizon_days", Float (horizon /. day));
        ("drills", Int (List.length drills));
        ("loop_off", scheduler_json stats_off wall_off);
        ("loop_on", scheduler_json stats_on wall_on);
        ( "health",
          match health_on with
          | Some h -> Framework.Health.summary_to_json h
          | None -> Null );
        ( "steady_state_poll",
          Obj
            [ ("without_probe_ns", Float ns_off);
              ("with_probe_ns", Float ns_on) ] ) ]
  in
  let text = Simkit.Json.to_string ~indent:2 json in
  let oc = open_out "BENCH_health.json" in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  print_endline text;
  print_endline "written to BENCH_health.json"

(* ---- E14: Trustlint + runtime audit overhead -------------------------------------------- *)

(* Measures (a) the static linter over the full catalog and every CLI
   preset, and (b) the runtime auditor's cost: the same 2-month campaign
   with audit off and on, checking the audited run reproduces the
   unaudited report exactly (the auditor draws no engine randomness).
   Writes BENCH_lint.json.  [--scenario lint] runs only this. *)
let e14_lint () =
  section "E14" "Trustlint static analysis + runtime audit overhead";
  let t0 = Unix.gettimeofday () in
  let catalog_diags = Framework.Lint.check_catalog () in
  let preset_diags =
    List.concat_map (fun (_, cfg) -> Framework.Lint.run cfg) Framework.Lint.presets
  in
  let lint_wall = Unix.gettimeofday () -. t0 in
  Printf.printf
    "lint: catalog (751 configs) + %d presets in %.3f s, %d diagnostics\n"
    (List.length Framework.Lint.presets)
    lint_wall
    (List.length catalog_diags + List.length preset_diags);
  let months = 2 in
  let campaign ~audit =
    let cfg = { Framework.Campaign.default_config with months; audit } in
    let t0 = Unix.gettimeofday () in
    let report = Framework.Campaign.run cfg in
    (report, Unix.gettimeofday () -. t0)
  in
  let report_off, wall_off = campaign ~audit:false in
  let report_on, wall_on = campaign ~audit:true in
  (* Byte-identity modulo the audit member itself: strip it and compare
     the serialised reports. *)
  let strip r = { r with Framework.Campaign.audit = None } in
  let identical =
    String.equal
      (Framework.Report.to_string (strip report_off))
      (Framework.Report.to_string (strip report_on))
  in
  let summary =
    match report_on.Framework.Campaign.audit with
    | Some s -> s
    | None -> failwith "audited campaign produced no audit summary"
  in
  Printf.printf "%d-month campaign: audit off %.2f s, on %.2f s (%+.1f%%)\n"
    months wall_off wall_on
    ((wall_on -. wall_off) /. wall_off *. 100.0);
  Printf.printf "  reports identical modulo audit member: %b\n" identical;
  Printf.printf
    "  audit: %d checks run, %d violations, %d races flagged over %d events\n"
    summary.Simkit.Audit.checks_run
    (List.length summary.Simkit.Audit.violations)
    summary.Simkit.Audit.races_flagged summary.Simkit.Audit.events_observed;
  List.iteri
    (fun i v ->
      if i < 3 then
        Printf.printf "    [t=%.0f] %s: %s\n" v.Simkit.Audit.at
          v.Simkit.Audit.check
          (if String.length v.Simkit.Audit.detail > 200 then
             String.sub v.Simkit.Audit.detail 0 200 ^ "..."
           else v.Simkit.Audit.detail))
    summary.Simkit.Audit.violations;
  if not identical then
    print_endline "WARNING: the audited campaign diverged from the baseline!";
  let json =
    let open Simkit.Json in
    Obj
      [ ( "lint",
          Obj
            [ ("configurations", Int (Framework.Jobs.total_configurations ()));
              ("presets", Int (List.length Framework.Lint.presets));
              ("wall_s", Float lint_wall);
              ( "diagnostics",
                Int (List.length catalog_diags + List.length preset_diags) ) ] );
        ( "audit",
          Obj
            [ ("months", Int months);
              ("off_wall_s", Float wall_off);
              ("on_wall_s", Float wall_on);
              ( "overhead_pct",
                Float ((wall_on -. wall_off) /. wall_off *. 100.0) );
              ("reports_identical", Bool identical);
              ("checks_run", Int summary.Simkit.Audit.checks_run);
              ("violations", Int (List.length summary.Simkit.Audit.violations));
              ("races_flagged", Int summary.Simkit.Audit.races_flagged);
              ("events_observed", Int summary.Simkit.Audit.events_observed) ] ) ]
  in
  let text = Simkit.Json.to_string ~indent:2 json in
  let oc = open_out "BENCH_lint.json" in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  print_endline text;
  print_endline "written to BENCH_lint.json"

(* ---- E15: triage pipeline at scale ------------------------------------------------------ *)

(* Replays >= 1M synthetic evidence bundles through canonicalization and
   the bounded signature store.  The population is clustered: a Zipf-ish
   skew over ~3x max_live distinct failure modes, each mode pinned to one
   cluster with the reporting host varying inside it — so canonical
   signatures collapse per-cluster noise, hot modes stay live and the
   cold tail is forced through eviction.  Checks the memory bound
   (peak_live <= max_live), occurrence conservation across tombstones,
   and the O(1) counters against the list-scan oracle; writes
   BENCH_triage.json.  [--scenario triage] runs only this. *)

let triage_bundles = ref 1_000_000

let e15_triage () =
  section "E15" "triage: millions of bundles through the bounded signature store";
  let env = Framework.Env.create ~seed:1515L () in
  let limits = Framework.Bugtracker.default_limits in
  let tracker = Framework.Bugtracker.create ~limits () in
  let bundles = !triage_bundles in
  let distinct = 3 * limits.Framework.Bugtracker.max_live in
  let clusters = Array.of_list Testbed.Inventory.clusters in
  let rng = Simkit.Prng.create 9L in
  (* ~30 simulated seconds per bundle: over 1M bundles that is nearly a
     simulated year, so the 6 h idle grace actually distinguishes hot
     modes from the cold tail. *)
  let step = 30.0 in
  let evidence_of m =
    let spec = clusters.(m mod Array.length clusters) in
    let host =
      Printf.sprintf "%s-%d.%s" spec.Testbed.Inventory.cluster
        ((m mod spec.Testbed.Inventory.nodes) + 1)
        spec.Testbed.Inventory.site
    in
    { Framework.Bugtracker.signature = Printf.sprintf "disk:%s:mode%d" host m;
      summary = Printf.sprintf "synthetic failure mode %d" m;
      category = "disk";
      source_test = "bench_triage";
      fault_ids = [ m ] }
  in
  let live_words0 = Gc.((quick_stat ()).heap_words) in
  let t0 = Unix.gettimeofday () in
  let reopened = ref 0 in
  for i = 1 to bundles do
    let u = Simkit.Prng.float rng in
    let m = int_of_float (float_of_int distinct *. (u ** 4.0)) in
    let now = float_of_int i *. step in
    let evidence = evidence_of m in
    let canonical = Framework.Triage.canonicalize env evidence in
    let key = Framework.Triage.canonical_signature canonical in
    (match
       Framework.Bugtracker.file tracker ~now
         { evidence with Framework.Bugtracker.signature = key }
     with
    | `New _ -> ()
    | `Duplicate bug ->
      (* Exercise the regression path: periodically "fix" a recurring
         bug so its next occurrence reopens it. *)
      if i mod 1000 = 0 && bug.Framework.Bugtracker.status = Framework.Bugtracker.Open
      then Framework.Bugtracker.mark_fixed tracker ~now bug
      else if bug.Framework.Bugtracker.status = Framework.Bugtracker.Open
              && bug.Framework.Bugtracker.reopens > 0
      then incr reopened)
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Gc.compact ();
  let live_words = Gc.((quick_stat ()).heap_words) - live_words0 in
  let stats = Framework.Bugtracker.stats tracker in
  let filings_per_s = float_of_int bundles /. wall in
  let dedup_ratio =
    float_of_int bundles /. float_of_int (Stdlib.max 1 stats.Framework.Bugtracker.filed_total)
  in
  (* Conservation: every bundle is accounted for either by a live bug or
     by a tombstone — eviction may never lose occurrence counts. *)
  let live_occ =
    List.fold_left
      (fun acc b -> acc + b.Framework.Bugtracker.occurrences)
      0
      (Framework.Bugtracker.all tracker)
  in
  let conserved =
    live_occ + stats.Framework.Bugtracker.tombstoned_occurrences = bundles
  in
  let counters_ok =
    Framework.Bugtracker.counts tracker = Framework.Bugtracker.counts_scan tracker
  in
  let bound_ok =
    stats.Framework.Bugtracker.peak_live <= limits.Framework.Bugtracker.max_live
  in
  Printf.printf "%d bundles over %d distinct modes in %.2f s (%.0f filings/s)\n"
    bundles distinct wall filings_per_s;
  Printf.printf
    "  store: %d live (peak %d, cap %d %s), %d distinct filed, %d evictions, \
     %d resurrections\n"
    stats.Framework.Bugtracker.live stats.Framework.Bugtracker.peak_live
    limits.Framework.Bugtracker.max_live
    (if bound_ok then "OK" else "EXCEEDED")
    stats.Framework.Bugtracker.filed_total stats.Framework.Bugtracker.evicted
    stats.Framework.Bugtracker.resurrected;
  Printf.printf "  dedup ratio: %.1f filings/signature\n" dedup_ratio;
  Printf.printf "  occurrence conservation (live %d + tombstoned %d = %d): %s\n"
    live_occ stats.Framework.Bugtracker.tombstoned_occurrences bundles
    (if conserved then "OK" else "VIOLATED");
  Printf.printf "  O(1) counters match list-scan oracle: %b\n" counters_ok;
  Printf.printf "  retained heap: %.1f MB (%.0f words/live bug)\n"
    (float_of_int live_words *. float_of_int (Sys.word_size / 8) /. 1048576.0)
    (float_of_int live_words /. float_of_int (Stdlib.max 1 stats.Framework.Bugtracker.live));
  if not (bound_ok && conserved && counters_ok) then
    print_endline "WARNING: triage store invariants violated!";
  let json =
    let open Simkit.Json in
    Obj
      [ ("bundles", Int bundles);
        ("distinct_modes", Int distinct);
        ("wall_s", Float wall);
        ("filings_per_s", Float filings_per_s);
        ("dedup_ratio", Float dedup_ratio);
        ("max_live", Int limits.Framework.Bugtracker.max_live);
        ("peak_live", Int stats.Framework.Bugtracker.peak_live);
        ("live", Int stats.Framework.Bugtracker.live);
        ("filed_total", Int stats.Framework.Bugtracker.filed_total);
        ("evicted", Int stats.Framework.Bugtracker.evicted);
        ("resurrected", Int stats.Framework.Bugtracker.resurrected);
        ("tombstoned_occurrences", Int stats.Framework.Bugtracker.tombstoned_occurrences);
        ("memory_bound_ok", Bool bound_ok);
        ("occurrences_conserved", Bool conserved);
        ("counters_match_oracle", Bool counters_ok);
        ("retained_heap_words", Int live_words) ]
  in
  let text = Simkit.Json.to_string ~indent:2 json in
  let oc = open_out "BENCH_triage.json" in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  print_endline text;
  print_endline "written to BENCH_triage.json"

(* ---- E16: engine raw speed ------------------------------------------------------------- *)

(* Drives the 2-month reference campaign by hand through the engine's
   [next_time]/[step] API so every step's wall latency can be sampled,
   then reports events/s, minor words allocated per event and the step
   latency percentiles.  Writes BENCH_engine.json — the checked-in copy
   of that file is the baseline the CI perf gate compares against.
   [--scenario engine] runs only this. *)

let e16_engine () =
  section "E16" "engine: events/s, allocation and step latency on the 2-month reference campaign";
  let months = 2 in
  let anchor_events_per_s = 6500.0 in
  let samples = ref [||] in
  let nsamples = ref 0 in
  let events = ref 0 in
  let steps = ref 0 in
  let wall = ref 0.0 in
  let minor_words = ref 0.0 in
  let drive engine horizon =
    let cap = ref 65536 in
    let buf = ref (Array.make !cap 0.0) in
    let n = ref 0 in
    let minor0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let continue = ref true in
    while !continue do
      match Simkit.Engine.next_time engine with
      | Some next when next <= horizon ->
        let s0 = Unix.gettimeofday () in
        ignore (Simkit.Engine.step engine);
        let dt = Unix.gettimeofday () -. s0 in
        if !n = !cap then begin
          let nbuf = Array.make (2 * !cap) 0.0 in
          Array.blit !buf 0 nbuf 0 !cap;
          buf := nbuf;
          cap := 2 * !cap
        end;
        !buf.(!n) <- dt;
        incr n
      | _ -> continue := false
    done;
    wall := Unix.gettimeofday () -. t0;
    minor_words := Gc.minor_words () -. minor0;
    (* Clamp the clock to the horizon exactly as [run_until] would. *)
    Simkit.Engine.run_until engine horizon;
    events := Simkit.Engine.events_executed engine;
    steps := !n;
    samples := !buf;
    nsamples := !n
  in
  let cfg = { Framework.Campaign.default_config with months } in
  let report = Framework.Campaign.run ~drive cfg in
  let sorted = Array.sub !samples 0 !nsamples in
  Array.sort compare sorted;
  let percentile p =
    if !nsamples = 0 then 0.0
    else begin
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int !nsamples)) - 1 in
      sorted.(Stdlib.max 0 (Stdlib.min (!nsamples - 1) rank)) *. 1e6
    end
  in
  let events_per_s = float_of_int !events /. !wall in
  let minor_words_per_event = !minor_words /. float_of_int (Stdlib.max 1 !events) in
  let p50 = percentile 50.0 and p95 = percentile 95.0 and p99 = percentile 99.0 in
  let max_us = if !nsamples = 0 then 0.0 else sorted.(!nsamples - 1) *. 1e6 in
  let speedup = events_per_s /. anchor_events_per_s in
  Printf.printf "%d events (%d steps) over %d months in %.2f s\n" !events !steps months !wall;
  Printf.printf "  throughput: %.0f events/s (%.1fx the %.0f events/s anchor)\n"
    events_per_s speedup anchor_events_per_s;
  Printf.printf "  allocation: %.1f minor words/event\n" minor_words_per_event;
  Printf.printf "  step latency: p50 %.2f us, p95 %.2f us, p99 %.2f us, max %.0f us\n"
    p50 p95 p99 max_us;
  Printf.printf "  campaign sanity: %d builds, %d bugs filed\n"
    report.Framework.Campaign.builds_total report.Framework.Campaign.bugs_filed;
  let json =
    let open Simkit.Json in
    Obj
      [ ("scenario", String "engine");
        ("months", Int months);
        ("events_executed", Int !events);
        ("steps", Int !steps);
        ("wall_s", Float !wall);
        ("events_per_s", Float events_per_s);
        ("minor_words_per_event", Float minor_words_per_event);
        ("step_latency_us",
         Obj [ ("p50", Float p50); ("p95", Float p95); ("p99", Float p99);
               ("max", Float max_us) ]);
        ("anchor_events_per_s", Float anchor_events_per_s);
        ("speedup_vs_anchor", Float speedup) ]
  in
  let text = Simkit.Json.to_string ~indent:2 json in
  let oc = open_out "BENCH_engine.json" in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  print_endline text;
  print_endline "written to BENCH_engine.json"

(* ---- E17: status-page serving layer ----------------------------------------------------- *)

(* A 2-month full-catalog campaign with the serving layer attached and a
   workload hot enough to resolve >= 1M reads, including daily flash
   crowds that overwhelm admission and a Serve_crash at day 30 (repaired
   12 h later) that forces a journal-replay recovery.  The wall-clock
   probe is injected here — the library never reads real time — so
   reads/s reflects the service loop's true per-read cost.  Writes
   BENCH_serve.json, whose checked-in copy is the serve perf-gate
   baseline.  [--scenario serve] runs only this. *)

let e17_serve () =
  section "E17" "serving: snapshot cache, shedding and crash recovery under >= 1M reads";
  let day = Simkit.Calendar.day in
  let months = 2 in
  let horizon = float_of_int months *. Simkit.Calendar.month in
  let serve_cfg =
    { Framework.Serve.default_config with
      Framework.Serve.rate_limit = 200.0;
      burst = 8000.0;
      queue_limit = 10_000;
      stale_queue = 500;
      fallback_queue = 5000;
      readers_per_s = 5.0;
    }
  in
  let env = Framework.Env.create ~seed:1717L () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let page = Framework.Statuspage.create env in
  let serve = Framework.Serve.attach ~config:serve_cfg env page in
  Framework.Serve.set_clock serve Unix.gettimeofday;
  let scheduler = Framework.Scheduler.create env in
  List.iter (Framework.Scheduler.enable_family scheduler) Framework.Testdef.all_families;
  Framework.Scheduler.start scheduler;
  let faults = Framework.Env.faults env in
  ignore
    (Simkit.Engine.schedule_at (Framework.Env.engine env) ~time:(30.0 *. day)
       (fun eng ->
         match
           Testbed.Faults.inject_on faults ~now:(Simkit.Engine.now eng)
             Testbed.Faults.Serve_crash
             (Testbed.Faults.Global Testbed.Faults.serve_crash_flag)
         with
         | Some fault ->
           ignore
             (Simkit.Engine.schedule eng ~delay:(12.0 *. 3600.0) (fun eng ->
                  Testbed.Faults.repair faults ~now:(Simkit.Engine.now eng) fault))
         | None -> ()));
  let t0 = Unix.gettimeofday () in
  Framework.Env.run_until env horizon;
  let wall = Unix.gettimeofday () -. t0 in
  let s = Framework.Serve.summary serve in
  let busy = Framework.Serve.busy_seconds serve in
  let reads_per_s =
    if busy > 0.0 then float_of_int s.Framework.Serve.reads /. busy else 0.0
  in
  let served =
    s.Framework.Serve.fresh + s.Framework.Serve.not_modified
    + s.Framework.Serve.stale + s.Framework.Serve.fallback
  in
  let conserved = served + s.Framework.Serve.shed = s.Framework.Serve.reads in
  Printf.printf "%d reads resolved over %d months in %.2f s wall (%.2f s serving)\n"
    s.Framework.Serve.reads months wall busy;
  Printf.printf "  throughput: %.0f reads/s of serving time %s\n" reads_per_s
    (if s.Framework.Serve.reads >= 1_000_000 then "(target >= 1M reads: OK)"
     else "(target >= 1M reads: MISSED)");
  Printf.printf
    "  outcomes: %d fresh, %d not-modified, %d stale, %d fallback, %d shed \
     (conservation: %s)\n"
    s.Framework.Serve.fresh s.Framework.Serve.not_modified
    s.Framework.Serve.stale s.Framework.Serve.fallback s.Framework.Serve.shed
    (if conserved then "OK" else "VIOLATED");
  Printf.printf "  cache: %d renders for %d served reads (hit ratio %.4f)\n"
    s.Framework.Serve.renders served s.Framework.Serve.hit_ratio;
  Printf.printf
    "  degradation: %.0f s degraded, %d alerts, queue peak %d; staleness p50 \
     %.1f s, p99 %.1f s, max %.1f s\n"
    s.Framework.Serve.degraded_seconds s.Framework.Serve.alerts_fired
    s.Framework.Serve.queued_peak s.Framework.Serve.staleness_p50
    s.Framework.Serve.staleness_p99 s.Framework.Serve.staleness_max;
  Printf.printf "  crash drill: %d crash(es), %d recovery replay(s)\n"
    s.Framework.Serve.crashes s.Framework.Serve.recoveries;
  if not conserved then print_endline "WARNING: serve read conservation violated!";
  let json =
    let open Simkit.Json in
    Obj
      [ ("scenario", String "serve");
        ("months", Int months);
        ("reads", Int s.Framework.Serve.reads);
        ("wall_s", Float wall);
        ("serving_wall_s", Float busy);
        ("reads_per_s", Float reads_per_s);
        ("hit_ratio", Float s.Framework.Serve.hit_ratio);
        ("fresh", Int s.Framework.Serve.fresh);
        ("not_modified", Int s.Framework.Serve.not_modified);
        ("stale", Int s.Framework.Serve.stale);
        ("fallback", Int s.Framework.Serve.fallback);
        ("shed", Int s.Framework.Serve.shed);
        ("conservation_ok", Bool conserved);
        ("renders", Int s.Framework.Serve.renders);
        ("renders_saved", Int s.Framework.Serve.renders_saved);
        ("queued_peak", Int s.Framework.Serve.queued_peak);
        ("degraded_seconds", Float s.Framework.Serve.degraded_seconds);
        ("alerts_fired", Int s.Framework.Serve.alerts_fired);
        ("crashes", Int s.Framework.Serve.crashes);
        ("recoveries", Int s.Framework.Serve.recoveries);
        ("staleness_s",
         Obj [ ("p50", Float s.Framework.Serve.staleness_p50);
               ("p99", Float s.Framework.Serve.staleness_p99);
               ("max", Float s.Framework.Serve.staleness_max) ]) ]
  in
  let text = Simkit.Json.to_string ~indent:2 json in
  let oc = open_out "BENCH_serve.json" in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  print_endline text;
  print_endline "written to BENCH_serve.json"

(* ---- E18: federation sharding --------------------------------------------------------- *)

(* A 10-testbed federation (one month per member) driven two ways: the
   sharded conservative-lookahead path, which coordinates only at
   6-hourly barriers, and the unsharded Reference driver, which runs the
   whole federation through one global event loop and re-establishes the
   cross-testbed coupling state after every event — the discipline a
   single engine with no lookahead contract must follow.  Both produce
   byte-identical reports (checked here across shard counts 1/2/4/8 and
   the sequential/parallel/interleaved drivers); the speedup of the
   sharded path over the reference is the gating figure.  Writes
   BENCH_federation.json, whose checked-in copy is the federation
   perf-gate baseline.  [--scenario federation] runs only this. *)

let e18_federation () =
  section "E18" "federation: sharded lookahead barriers vs unsharded reference";
  let base_cfg =
    { Framework.Federation.default_config with
      Framework.Federation.testbeds = 10;
      shards = 4;
      (* High enough that a one-month window actually sees federation-wide
         backbone events, so the gated run exercises the cross-shard
         injection path. *)
      backbone_faults_per_year = 36.0;
      base =
        { Framework.Federation.default_config.Framework.Federation.base with
          Framework.Campaign.months = 1 };
    }
  in
  (* Reports are compared on the full per-member serialization, with the
     fields that legitimately vary (shard count, driver) normalized away. *)
  let fingerprint report =
    let normalized =
      { report with
        Framework.Federation.fed_cfg =
          { report.Framework.Federation.fed_cfg with
            Framework.Federation.shards = 1;
            driver = Framework.Federation.Sequential;
          };
      }
    in
    Simkit.Json.to_string
      (Framework.Federation.report_to_json ~full:true normalized)
  in
  let timed cfg =
    let t0 = Unix.gettimeofday () in
    let report = Framework.Federation.run cfg in
    (report, Unix.gettimeofday () -. t0)
  in
  let sharded, sharded_wall = timed base_cfg in
  let reference, reference_wall =
    timed
      { base_cfg with
        Framework.Federation.shards = 1;
        driver = Framework.Federation.Reference;
      }
  in
  let expected = fingerprint sharded in
  let variants =
    [ ("K=1 sequential", { base_cfg with Framework.Federation.shards = 1 });
      ("K=2 sequential", { base_cfg with Framework.Federation.shards = 2 });
      ("K=8 sequential", { base_cfg with Framework.Federation.shards = 8 });
      ( "K=4 parallel",
        { base_cfg with Framework.Federation.driver = Framework.Federation.Parallel } );
      ( "K=4 interleaved",
        { base_cfg with
          Framework.Federation.driver = Framework.Federation.Interleaved 77L } ) ]
  in
  let matrix =
    ("K=4 sequential", true)
    :: ("K=1 reference", String.equal expected (fingerprint reference))
    :: List.map
         (fun (name, cfg) ->
           (name, String.equal expected (fingerprint (Framework.Federation.run cfg))))
         variants
  in
  let identical = List.for_all snd matrix in
  let events = sharded.Framework.Federation.events_total in
  let sharded_events_per_s = float_of_int events /. sharded_wall in
  let reference_events_per_s =
    float_of_int reference.Framework.Federation.events_total /. reference_wall
  in
  let speedup = sharded_events_per_s /. reference_events_per_s in
  let c = sharded.Framework.Federation.coordination in
  Printf.printf "%d members, %d aggregate events, %d barriers\n"
    base_cfg.Framework.Federation.testbeds events c.Framework.Federation.barriers;
  Printf.printf "  sharded (K=4):   %.2f s wall, %.0f events/s\n" sharded_wall
    sharded_events_per_s;
  Printf.printf "  reference (K=1): %.2f s wall, %.0f events/s\n" reference_wall
    reference_events_per_s;
  Printf.printf "  speedup: %.2fx %s\n" speedup
    (if speedup >= 3.0 then "(target >= 3x: OK)" else "(target >= 3x: MISSED)");
  List.iter
    (fun (name, same) ->
      Printf.printf "  %-18s %s\n" name
        (if same then "byte-identical" else "DIVERGED"))
    matrix;
  Printf.printf
    "  coordination: %d backbone faults, %d/%d VLANs granted, %d link tests, %d audits\n"
    c.Framework.Federation.backbone_faults c.Framework.Federation.vlan_grants
    c.Framework.Federation.vlan_requests c.Framework.Federation.link_tests
    c.Framework.Federation.audits;
  if not identical then
    print_endline "WARNING: federation runs diverged across shard counts!";
  let json =
    let open Simkit.Json in
    Obj
      [ ("scenario", String "federation");
        ("testbeds", Int base_cfg.Framework.Federation.testbeds);
        ("months", Int 1);
        ("lookahead_s", Float base_cfg.Framework.Federation.lookahead);
        ("events_total", Int events);
        ("sharded_wall_s", Float sharded_wall);
        ("reference_wall_s", Float reference_wall);
        ("sharded_events_per_s", Float sharded_events_per_s);
        ("reference_events_per_s", Float reference_events_per_s);
        ("speedup", Float speedup);
        ("identical_across_shards", Bool identical);
        ( "matrix",
          Obj (List.map (fun (name, same) -> (name, Bool same)) matrix) );
        ( "coordination",
          Obj
            [ ("barriers", Int c.Framework.Federation.barriers);
              ("backbone_faults", Int c.Framework.Federation.backbone_faults);
              ("vlan_requests", Int c.Framework.Federation.vlan_requests);
              ("vlan_grants", Int c.Framework.Federation.vlan_grants);
              ("vlan_denials", Int c.Framework.Federation.vlan_denials);
              ("link_tests", Int c.Framework.Federation.link_tests);
              ("link_failures", Int c.Framework.Federation.link_failures);
              ("audits", Int c.Framework.Federation.audits);
              ("min_in_service", Int c.Framework.Federation.min_in_service) ] ) ]
  in
  let text = Simkit.Json.to_string ~indent:2 json in
  let oc = open_out "BENCH_federation.json" in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  print_endline text;
  print_endline "written to BENCH_federation.json"

(* ---- Bechamel micro-benchmarks --------------------------------------------------------- *)

let microbenchmarks () =
  section "MICRO" "Bechamel micro-benchmarks of the core machinery";
  let open Bechamel in
  (* Staged state shared by the closures. *)
  let rng = Simkit.Prng.create 1L in
  let instance = Testbed.Instance.build ~seed:808L () in
  let oar = Oar.Manager.create instance in
  let node = Testbed.Instance.node instance "grisou-1.nancy" in
  let doc_text =
    Simkit.Json.to_string
      (Option.get (Testbed.Refapi.get instance.Testbed.Instance.refapi "grisou-1.nancy"))
  in
  let doc = Simkit.Json.of_string_exn doc_text in
  let request = Oar.Request.nodes ~filter:"cluster='grisou'" (`N 4) ~walltime:3600.0 in
  let expr_source = "cluster='grisou' and gpu='NO' and cores>=8" in
  let tests =
    [ Test.make ~name:"prng.next_int64" (Staged.stage (fun () -> Simkit.Prng.next_int64 rng));
      Test.make ~name:"dist.normal"
        (Staged.stage (fun () -> Simkit.Dist.normal rng ~mu:0.0 ~sigma:1.0));
      Test.make ~name:"engine.1000-events"
        (Staged.stage (fun () ->
             let e = Simkit.Engine.create () in
             for i = 1 to 1000 do
               ignore (Simkit.Engine.schedule e ~delay:(float_of_int i) (fun _ -> ()))
             done;
             Simkit.Engine.run e));
      Test.make ~name:"json.parse-refapi-doc"
        (Staged.stage (fun () -> Simkit.Json.of_string_exn doc_text));
      Test.make ~name:"json.diff-identical" (Staged.stage (fun () -> Simkit.Json.diff doc doc));
      Test.make ~name:"expr.parse" (Staged.stage (fun () -> Oar.Expr.parse_exn expr_source));
      Test.make ~name:"oar.estimate-start"
        (Staged.stage (fun () -> Oar.Manager.estimate_start oar request));
      Test.make ~name:"g5kchecks.node-check"
        (Staged.stage (fun () -> G5kchecks.Check.run instance node));
      Test.make ~name:"matrix.expand-448"
        (Staged.stage (fun () ->
             Ci.Jobdef.combinations
               (Framework.Testdef.matrix_axes Framework.Testdef.Environments)));
      Test.make ~name:"kadeploy.expected-duration"
        (Staged.stage (fun () -> Kadeploy.Deploy.expected_duration ~nodes:200 ~image_mb:1200))
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false () in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    results
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ ns ] -> Printf.printf "  %-28s %12.1f ns/run\n%!" name ns
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        results)
    tests

let run_all () =
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11_resilience ();
  e12_scheduler ();
  e13_health ();
  e14_lint ();
  e15_triage ();
  e16_engine ();
  e17_serve ();
  e18_federation ();
  a1 ();
  a2_a3 ();
  a4 ();
  a5 ();
  a6 ();
  microbenchmarks ()

let scenarios =
  [ ("all", run_all); ("resilience", e11_resilience);
    ("scheduler", e12_scheduler); ("health", e13_health);
    ("lint", e14_lint); ("triage", e15_triage); ("engine", e16_engine);
    ("serve", e17_serve); ("federation", e18_federation);
    ("micro", microbenchmarks) ]

let () =
  let scenario = ref "all" in
  Arg.parse
    [ ( "--scenario",
        Arg.Set_string scenario,
        Printf.sprintf "NAME  run one scenario (%s)"
          (String.concat "|" (List.map fst scenarios)) );
      ( "--bundles",
        Arg.Set_int triage_bundles,
        "N  synthetic evidence bundles for the triage scenario (default 1000000)" ) ]
    (fun anon -> raise (Arg.Bad ("unexpected argument: " ^ anon)))
    "bench [--scenario NAME]";
  match List.assoc_opt !scenario scenarios with
  | None ->
    Printf.eprintf "unknown scenario %s (known: %s)\n" !scenario
      (String.concat ", " (List.map fst scenarios));
    exit 2
  | Some run ->
    let t0 = Unix.gettimeofday () in
    run ();
    Printf.printf "\ntotal bench wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
